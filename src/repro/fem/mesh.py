"""Meshes and grid generation.

"Operations: Define structure model; Generate grid; Define elements" —
the application VM's model-building operations bottom out here.  A
:class:`Mesh` holds node coordinates and per-element-type connectivity;
generator functions build the standard structural grids used across
examples and benchmarks.

Node numbering in :func:`rect_grid` is column-major (``ix * (ny+1) +
iy``) so that vertical-strip domain partitions own *contiguous* node —
and therefore DOF — ranges, which the parallel solver's windows rely
on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import MeshError
from .elements import element_type


class Mesh:
    """Nodes plus element groups (one group per element type)."""

    def __init__(self, coords: np.ndarray, dofs_per_node: int = 2) -> None:
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise MeshError(f"coords must be (N, 2), got {coords.shape}")
        if dofs_per_node not in (2, 3):
            raise MeshError(f"dofs_per_node must be 2 or 3, got {dofs_per_node}")
        self.coords = coords
        self.dofs_per_node = dofs_per_node
        self.groups: Dict[str, np.ndarray] = {}

    # -- construction -----------------------------------------------------

    def add_elements(self, etype_name: str, conn) -> None:
        et = element_type(etype_name)
        if et.dofs_per_node != self.dofs_per_node:
            raise MeshError(
                f"{etype_name} has {et.dofs_per_node} dofs/node but the mesh "
                f"uses {self.dofs_per_node}"
            )
        conn = np.asarray(conn, dtype=int)
        if conn.ndim != 2 or conn.shape[1] != et.nodes_per_element:
            raise MeshError(
                f"{etype_name}: connectivity must be (E, {et.nodes_per_element}), "
                f"got {conn.shape}"
            )
        if conn.min(initial=0) < 0 or conn.max(initial=-1) >= self.n_nodes:
            raise MeshError(f"{etype_name}: node index out of range")
        for e in range(conn.shape[0]):
            if len(set(conn[e])) != et.nodes_per_element:
                raise MeshError(f"{etype_name}: element {e} repeats a node")
        if etype_name in self.groups:
            self.groups[etype_name] = np.vstack([self.groups[etype_name], conn])
        else:
            self.groups[etype_name] = conn

    # -- shape ---------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.coords.shape[0]

    @property
    def n_dofs(self) -> int:
        return self.n_nodes * self.dofs_per_node

    @property
    def n_elements(self) -> int:
        return sum(g.shape[0] for g in self.groups.values())

    def dof(self, node: int, comp: int) -> int:
        """Global DOF index of component *comp* at *node*."""
        if not 0 <= node < self.n_nodes:
            raise MeshError(f"node {node} out of range")
        if not 0 <= comp < self.dofs_per_node:
            raise MeshError(f"dof component {comp} out of range")
        return node * self.dofs_per_node + comp

    # -- queries ----------------------------------------------------------------

    def element_coords(self, etype_name: str) -> np.ndarray:
        """Node coordinates per element: (E, nn, 2)."""
        conn = self.groups[etype_name]
        return self.coords[conn]

    def element_dofs(self, etype_name: str) -> np.ndarray:
        """Global DOF indices per element: (E, nd)."""
        conn = self.groups[etype_name]
        d = self.dofs_per_node
        return (conn[:, :, None] * d + np.arange(d)[None, None, :]).reshape(
            conn.shape[0], -1
        )

    def nodes_where(self, pred: Callable[[float, float], bool]) -> np.ndarray:
        """Node ids whose (x, y) satisfies *pred*."""
        mask = np.fromiter(
            (bool(pred(x, y)) for x, y in self.coords), dtype=bool, count=self.n_nodes
        )
        return np.nonzero(mask)[0]

    def nodes_on(self, x: Optional[float] = None, y: Optional[float] = None,
                 tol: float = 1e-9) -> np.ndarray:
        """Node ids on a vertical (x=...) and/or horizontal (y=...) line."""
        mask = np.ones(self.n_nodes, dtype=bool)
        if x is not None:
            mask &= np.abs(self.coords[:, 0] - x) < tol
        if y is not None:
            mask &= np.abs(self.coords[:, 1] - y) < tol
        return np.nonzero(mask)[0]

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.coords.min(axis=0), self.coords.max(axis=0)

    def stats(self) -> Dict[str, int]:
        out = {"nodes": self.n_nodes, "dofs": self.n_dofs, "elements": self.n_elements}
        for name, g in self.groups.items():
            out[f"elements.{name}"] = g.shape[0]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh({self.n_nodes} nodes, {self.n_elements} elements)"


# -- generators -----------------------------------------------------------------

def rect_grid(
    nx: int,
    ny: int,
    lx: float = 1.0,
    ly: float = 1.0,
    kind: str = "quad4",
) -> Mesh:
    """A structured nx-by-ny rectangle of quads or triangles.

    ``nx``/``ny`` count *cells*; the mesh has (nx+1)(ny+1) nodes,
    numbered column-major.
    """
    if nx < 1 or ny < 1:
        raise MeshError(f"grid needs nx, ny >= 1, got {nx}x{ny}")
    xs = np.linspace(0.0, lx, nx + 1)
    ys = np.linspace(0.0, ly, ny + 1)
    coords = np.array([(x, y) for x in xs for y in ys])
    mesh = Mesh(coords)

    def nid(ix: int, iy: int) -> int:
        return ix * (ny + 1) + iy

    cells = []
    for ix in range(nx):
        for iy in range(ny):
            n00 = nid(ix, iy)
            n10 = nid(ix + 1, iy)
            n11 = nid(ix + 1, iy + 1)
            n01 = nid(ix, iy + 1)
            cells.append((n00, n10, n11, n01))  # CCW
    cells = np.array(cells, dtype=int)
    if kind == "quad4":
        mesh.add_elements("quad4", cells)
    elif kind == "tri3":
        tris = np.vstack([cells[:, [0, 1, 2]], cells[:, [0, 2, 3]]])
        mesh.add_elements("tri3", tris)
    else:
        raise MeshError(f"rect_grid supports quad4/tri3, got {kind!r}")
    return mesh


def pratt_truss(n_panels: int, panel: float = 1.0, height: float = 1.0) -> Mesh:
    """A Pratt truss bridge: bottom/top chords, verticals, diagonals.

    ``n_panels`` must be >= 2.  Bottom-chord nodes are 0..n_panels, top
    chord nodes continue after them (over interior panel points).
    """
    if n_panels < 2:
        raise MeshError("pratt_truss needs n_panels >= 2")
    bottom = [(i * panel, 0.0) for i in range(n_panels + 1)]
    top = [(i * panel, height) for i in range(1, n_panels)]
    coords = np.array(bottom + top)
    mesh = Mesh(coords)
    n_b = n_panels + 1

    def top_id(i: int) -> int:  # i in 1..n_panels-1
        return n_b + (i - 1)

    bars: List[Tuple[int, int]] = []
    bars += [(i, i + 1) for i in range(n_panels)]                     # bottom chord
    bars += [(top_id(i), top_id(i + 1)) for i in range(1, n_panels - 1)]  # top chord
    bars += [(i, top_id(i)) for i in range(1, n_panels)]              # verticals
    bars += [(0, top_id(1)), (n_panels, top_id(n_panels - 1))]        # end diagonals
    mid = (n_panels + 1) // 2
    bars += [(top_id(i), i + 1) for i in range(1, mid)]               # diagonals left
    bars += [(top_id(i), i - 1) for i in range(mid, n_panels)]        # diagonals right
    mesh.add_elements("bar2d", np.array(sorted(set(map(tuple, map(sorted, bars))))))
    return mesh


def cantilever_frame(n_elems: int, length: float = 1.0) -> Mesh:
    """A horizontal cantilever of beam2d elements along the x-axis."""
    if n_elems < 1:
        raise MeshError("cantilever_frame needs n_elems >= 1")
    xs = np.linspace(0.0, length, n_elems + 1)
    coords = np.column_stack([xs, np.zeros_like(xs)])
    mesh = Mesh(coords, dofs_per_node=3)
    conn = np.column_stack([np.arange(n_elems), np.arange(1, n_elems + 1)])
    mesh.add_elements("beam2d", conn)
    return mesh


def portal_frame(n_stories: int, n_bays: int, story_h: float = 3.0,
                 bay_w: float = 5.0) -> Mesh:
    """A multi-story, multi-bay rectangular frame of beam2d elements."""
    if n_stories < 1 or n_bays < 1:
        raise MeshError("portal_frame needs n_stories, n_bays >= 1")
    coords = []
    for ix in range(n_bays + 1):
        for iy in range(n_stories + 1):
            coords.append((ix * bay_w, iy * story_h))
    mesh = Mesh(np.array(coords), dofs_per_node=3)

    def nid(ix, iy):
        return ix * (n_stories + 1) + iy

    members = []
    for ix in range(n_bays + 1):       # columns
        for iy in range(n_stories):
            members.append((nid(ix, iy), nid(ix, iy + 1)))
    for iy in range(1, n_stories + 1):  # girders
        for ix in range(n_bays):
            members.append((nid(ix, iy), nid(ix + 1, iy)))
    mesh.add_elements("beam2d", np.array(members))
    return mesh


def rect_grid_quad8(nx: int, ny: int, lx: float = 1.0, ly: float = 1.0) -> Mesh:
    """A structured grid of eight-node serendipity quads.

    Nodes live on a half-step lattice (corners plus midside nodes; no
    cell-center nodes), numbered column-major over the lattice.
    """
    if nx < 1 or ny < 1:
        raise MeshError(f"grid needs nx, ny >= 1, got {nx}x{ny}")
    node_id: Dict[Tuple[int, int], int] = {}
    coords: List[Tuple[float, float]] = []
    for i in range(2 * nx + 1):          # half-step columns
        for j in range(2 * ny + 1):      # half-step rows
            if i % 2 == 1 and j % 2 == 1:
                continue                  # no center nodes in serendipity
            node_id[(i, j)] = len(coords)
            coords.append((i * lx / (2 * nx), j * ly / (2 * ny)))
    mesh = Mesh(np.array(coords))
    conn = []
    for ix in range(nx):
        for iy in range(ny):
            i0, j0 = 2 * ix, 2 * iy
            conn.append((
                node_id[(i0, j0)], node_id[(i0 + 2, j0)],
                node_id[(i0 + 2, j0 + 2)], node_id[(i0, j0 + 2)],
                node_id[(i0 + 1, j0)], node_id[(i0 + 2, j0 + 1)],
                node_id[(i0 + 1, j0 + 2)], node_id[(i0, j0 + 1)],
            ))
    mesh.add_elements("quad8", np.array(conn, dtype=int))
    return mesh
