"""Substructure analysis by static condensation.

The conclusion of the paper names "parallelism in the substructure
analysis of a larger structure" as the middle level of FEM-2
parallelism.  Each substructure condenses its interior DOFs onto the
interface (a Schur complement); the interface system couples the
substructures and is solved once; interiors back-substitute
independently.  The host-side driver here is the correctness oracle for
the distributed version in :mod:`repro.fem.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import FEMError, SolverError
from .assembly import element_stiffness_batches
from .bc import Constraints
from .loads import LoadSet
from .materials import Material
from .mesh import Mesh
from .partition import Subdomain, interface_dofs, partition_strips


@dataclass
class CondensedSubstructure:
    """One substructure after condensation.

    Keeps the interior factor and coupling so back-substitution does not
    re-factor — the "local data retained over pause/resume" of the
    distributed protocol.
    """

    index: int
    interior: np.ndarray        # global dof ids
    boundary: np.ndarray        # global dof ids (interface, free)
    schur: np.ndarray           # (nb, nb)
    g: np.ndarray               # condensed rhs contribution (nb,)
    k_ii: np.ndarray            # (ni, ni) interior block (kept for back-sub)
    k_ib: np.ndarray            # (ni, nb)
    f_i: np.ndarray             # (ni,)

    def back_substitute(self, u_b: np.ndarray) -> np.ndarray:
        """Interior displacements given interface displacements."""
        if self.interior.size == 0:
            return np.zeros(0)
        return np.linalg.solve(self.k_ii, self.f_i - self.k_ib @ u_b)


def subdomain_stiffness(
    mesh: Mesh, material: Material, sub: Subdomain
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense stiffness of one subdomain over its own DOF set.

    Returns (k_sub (n, n), dofs (n,)) with ``dofs`` the sorted global
    DOF ids the rows/columns refer to.
    """
    d = mesh.dofs_per_node
    dofs = (sub.nodes[:, None] * d + np.arange(d)[None, :]).ravel()
    pos = {g: i for i, g in enumerate(dofs)}
    n = dofs.size
    k_sub = np.zeros((n, n))
    batches = element_stiffness_batches(mesh, material)
    for name, rows in sub.element_rows.items():
        k_batch, dof_map = batches[name]
        for r in rows:
            idx = np.array([pos[g] for g in dof_map[r]])
            k_sub[np.ix_(idx, idx)] += k_batch[r]
    return k_sub, dofs


def condense_substructure(
    mesh: Mesh,
    material: Material,
    constraints: Constraints,
    f_global: np.ndarray,
    sub: Subdomain,
    boundary_set: np.ndarray,
) -> CondensedSubstructure:
    """Condense one subdomain's interior onto the interface.

    ``boundary_set`` is the global list of interface DOFs (free ones).
    Fixed DOFs are removed from the substructure system entirely.
    """
    k_sub, dofs = subdomain_stiffness(mesh, material, sub)
    fixed = set(constraints.fixed_dofs.tolist())
    bset = set(boundary_set.tolist())
    local_interior, local_boundary = [], []
    for i, g in enumerate(dofs):
        if g in fixed:
            continue
        (local_boundary if g in bset else local_interior).append(i)
    li = np.array(local_interior, dtype=int)
    lb = np.array(local_boundary, dtype=int)
    k_ii = k_sub[np.ix_(li, li)]
    k_ib = k_sub[np.ix_(li, lb)]
    k_bb = k_sub[np.ix_(lb, lb)]
    f_i = f_global[dofs[li]] if li.size else np.zeros(0)
    if li.size:
        try:
            w = np.linalg.solve(k_ii, np.column_stack([k_ib, f_i]))
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"substructure {sub.index}: interior block singular "
                "(insufficient supports?)"
            ) from exc
        x_ib, x_fi = w[:, :-1], w[:, -1]
        schur = k_bb - k_ib.T @ x_ib
        g = -k_ib.T @ x_fi
    else:
        schur = k_bb
        g = np.zeros(lb.size)
    return CondensedSubstructure(
        index=sub.index,
        interior=dofs[li],
        boundary=dofs[lb],
        schur=schur,
        g=g,
        k_ii=k_ii,
        k_ib=k_ib,
        f_i=f_i,
    )


@dataclass
class SubstructureSolution:
    u: np.ndarray
    interface_size: int
    interior_sizes: List[int]
    condensation_flops: int
    interface_flops: int


def substructure_solve(
    mesh: Mesh,
    material: Material,
    constraints: Constraints,
    loads: LoadSet,
    n_substructures: int = 4,
    subs: List[Subdomain] = None,
) -> SubstructureSolution:
    """Full substructure analysis: partition, condense, solve, expand."""
    if subs is None:
        subs = partition_strips(mesh, n_substructures)
    f = loads.vector(mesh)
    fixed = set(constraints.fixed_dofs.tolist())
    iface_all = interface_dofs(mesh, subs)
    iface = np.array([d for d in iface_all if d not in fixed], dtype=int)
    iface_pos = {g: i for i, g in enumerate(iface)}
    nb = iface.size
    if nb == 0 and len(subs) > 1:
        raise FEMError("multi-substructure model has no interface dofs")

    k_interface = np.zeros((nb, nb))
    rhs = f[iface].astype(float).copy()
    condensed: List[CondensedSubstructure] = []
    cond_flops = 0
    for sub in subs:
        c = condense_substructure(mesh, material, constraints, f, sub, iface)
        condensed.append(c)
        idx = np.array([iface_pos[g] for g in c.boundary], dtype=int)
        if idx.size:
            k_interface[np.ix_(idx, idx)] += c.schur
            rhs[idx] += c.g
        ni, nbi = c.interior.size, c.boundary.size
        cond_flops += ni**3 // 3 + 2 * ni * ni * (nbi + 1)

    if nb:
        try:
            u_b = np.linalg.solve(k_interface, rhs)
        except np.linalg.LinAlgError as exc:
            raise SolverError("interface system singular") from exc
    else:
        u_b = np.zeros(0)

    u = np.zeros(mesh.n_dofs)
    u[iface] = u_b
    for c in condensed:
        if c.interior.size:
            local_ub = u_b[[iface_pos[g] for g in c.boundary]]
            u[c.interior] = c.back_substitute(local_ub)
    for dof in constraints.fixed_dofs:
        u[dof] = dict(zip(constraints.fixed_dofs.tolist(),
                          constraints.prescribed_values()))[dof]
    return SubstructureSolution(
        u=u,
        interface_size=nb,
        interior_sizes=[c.interior.size for c in condensed],
        condensation_flops=cond_flops,
        interface_flops=nb**3 // 3,
    )
