"""Transient dynamics: Newmark-beta time integration.

The 1983 structural-dynamics workhorse, completing the workstation's
analysis menu: M a + C v + K u = f(t), integrated with the Newmark
family (average acceleration by default — unconditionally stable for
linear problems), with optional Rayleigh damping C = a0 M + a1 K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError
from .assembly import assemble_stiffness
from .bc import Constraints
from .mass import assemble_mass
from .materials import Material
from .mesh import Mesh
from .solvers.direct import cholesky_factor, cholesky_solve_factored


@dataclass
class TransientResult:
    """Sampled response history on the free DOFs, expanded on demand."""

    times: np.ndarray              # (n_steps + 1,)
    u: np.ndarray                  # (n_steps + 1, n_free)
    v: np.ndarray
    a: np.ndarray
    free_dofs: np.ndarray

    def displacement_at(self, mesh: Mesh, node: int, comp: int) -> np.ndarray:
        """Time history of one DOF (zero if it is constrained)."""
        dof = mesh.dof(node, comp)
        idx = np.nonzero(self.free_dofs == dof)[0]
        if idx.size == 0:
            return np.zeros_like(self.times)
        return self.u[:, idx[0]]

    def peak_displacement(self) -> float:
        return float(np.abs(self.u).max()) if self.u.size else 0.0


def newmark_transient(
    mesh: Mesh,
    material: Material,
    constraints: Constraints,
    force_fn: Callable[[float], np.ndarray],
    dt: float,
    n_steps: int,
    beta: float = 0.25,
    gamma: float = 0.5,
    rayleigh: tuple = (0.0, 0.0),
    lumped_mass: bool = True,
    u0: Optional[np.ndarray] = None,
    v0: Optional[np.ndarray] = None,
) -> TransientResult:
    """Integrate the constrained structure under ``force_fn(t)`` (full
    DOF vector) for ``n_steps`` of size ``dt``.

    beta=1/4, gamma=1/2 is the trapezoidal (average-acceleration) rule;
    beta=0, gamma=1/2 would be explicit central difference (not offered:
    the effective matrix would lose definiteness checks).
    """
    if dt <= 0 or n_steps < 1:
        raise SolverError("need dt > 0 and n_steps >= 1")
    if not (0 < beta <= 0.5 and 0.25 <= gamma <= 1.0):
        raise SolverError(f"unstable Newmark parameters beta={beta}, gamma={gamma}")
    free = constraints.free_dofs
    if free.size == 0:
        raise SolverError("no free degrees of freedom")
    k = assemble_stiffness(mesh, material, fmt="dense")[np.ix_(free, free)]
    m = assemble_mass(mesh, material, lumped=lumped_mass, fmt="dense")[
        np.ix_(free, free)
    ]
    a0, a1 = rayleigh
    c = a0 * m + a1 * k
    n = free.size

    u = np.zeros(n) if u0 is None else np.asarray(u0, dtype=float)[free]
    v = np.zeros(n) if v0 is None else np.asarray(v0, dtype=float)[free]
    f_now = np.asarray(force_fn(0.0), dtype=float)[free]
    # initial acceleration from equilibrium
    m_diag = np.diag(m)
    if lumped_mass and np.all(np.abs(m - np.diag(m_diag)) < 1e-12 * m_diag.max()):
        a_vec = (f_now - c @ v - k @ u) / m_diag
    else:
        a_vec = np.linalg.solve(m, f_now - c @ v - k @ u)

    # effective stiffness, factored once
    k_eff = k + (gamma / (beta * dt)) * c + (1.0 / (beta * dt * dt)) * m
    l = cholesky_factor(k_eff)

    times = np.zeros(n_steps + 1)
    hist_u = np.zeros((n_steps + 1, n))
    hist_v = np.zeros((n_steps + 1, n))
    hist_a = np.zeros((n_steps + 1, n))
    hist_u[0], hist_v[0], hist_a[0] = u, v, a_vec

    b1 = 1.0 / (beta * dt * dt)
    b2 = 1.0 / (beta * dt)
    b3 = 1.0 / (2.0 * beta) - 1.0
    g1 = gamma / (beta * dt)
    g2 = gamma / beta - 1.0
    g3 = dt * (gamma / (2.0 * beta) - 1.0)

    t = 0.0
    for step in range(1, n_steps + 1):
        t += dt
        f_next = np.asarray(force_fn(t), dtype=float)[free]
        rhs = (
            f_next
            + m @ (b1 * u + b2 * v + b3 * a_vec)
            + c @ (g1 * u + g2 * v + g3 * a_vec)
        )
        u_next = cholesky_solve_factored(l, rhs)
        a_next = b1 * (u_next - u) - b2 * v - b3 * a_vec
        v_next = v + dt * ((1.0 - gamma) * a_vec + gamma * a_next)
        u, v, a_vec = u_next, v_next, a_next
        times[step] = t
        hist_u[step], hist_v[step], hist_a[step] = u, v, a_vec

    return TransientResult(times, hist_u, hist_v, hist_a, free)


def energy_history(result: TransientResult, k: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Total mechanical energy per step (strain + kinetic) — conserved by
    the trapezoidal rule for undamped free vibration."""
    strain = 0.5 * np.einsum("ti,ij,tj->t", result.u, k, result.u)
    kinetic = 0.5 * np.einsum("ti,ij,tj->t", result.v, m, result.v)
    return strain + kinetic
