"""Domain partitioning for parallel FEM.

Each element belongs to exactly one subdomain; nodes on the seam are
shared.  A subdomain's *hull* is the contiguous DOF range spanning all
its nodes — the window the parallel solver reads and accumulates.  With
the column-major node numbering of :func:`repro.fem.mesh.rect_grid`,
strip partitions give tight hulls; recursive bisection gives better
surface-to-volume at the cost of looser hulls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import MeshError
from .mesh import Mesh


@dataclass
class Subdomain:
    """One partition: per-type element row indices plus node/DOF sets."""

    index: int
    element_rows: Dict[str, np.ndarray]  # etype -> rows into mesh.groups[etype]
    nodes: np.ndarray                    # unique node ids, sorted
    dof_lo: int                          # hull start (inclusive)
    dof_hi: int                          # hull end (exclusive)

    @property
    def n_elements(self) -> int:
        return sum(len(r) for r in self.element_rows.values())

    @property
    def hull_words(self) -> int:
        return self.dof_hi - self.dof_lo


def _centroids(mesh: Mesh) -> Tuple[np.ndarray, List[Tuple[str, int]]]:
    """Element centroids (E, 2) plus (etype, row) key per element."""
    cents, keys = [], []
    for name, conn in mesh.groups.items():
        cents.append(mesh.coords[conn].mean(axis=1))
        keys.extend((name, i) for i in range(conn.shape[0]))
    if not cents:
        raise MeshError("cannot partition a mesh with no elements")
    return np.vstack(cents), keys


def _build(mesh: Mesh, assignment: np.ndarray, keys, p: int) -> List[Subdomain]:
    subs = []
    d = mesh.dofs_per_node
    for s in range(p):
        rows: Dict[str, List[int]] = {}
        for flat_idx in np.nonzero(assignment == s)[0]:
            name, row = keys[flat_idx]
            rows.setdefault(name, []).append(row)
        element_rows = {n: np.array(r, dtype=int) for n, r in rows.items()}
        node_ids = (
            np.unique(
                np.concatenate(
                    [mesh.groups[n][r].ravel() for n, r in element_rows.items()]
                )
            )
            if element_rows
            else np.array([], dtype=int)
        )
        lo = int(node_ids.min()) * d if node_ids.size else 0
        hi = (int(node_ids.max()) + 1) * d if node_ids.size else 0
        subs.append(Subdomain(s, element_rows, node_ids, lo, hi))
    return subs


def partition_strips(mesh: Mesh, p: int, axis: int = 0) -> List[Subdomain]:
    """Partition into *p* strips of near-equal element count along an axis."""
    if p < 1:
        raise MeshError(f"need at least one partition, got {p}")
    cents, keys = _centroids(mesh)
    n_elems = len(keys)
    p = min(p, n_elems)
    order = np.argsort(cents[:, axis], kind="stable")
    assignment = np.empty(n_elems, dtype=int)
    bounds = np.linspace(0, n_elems, p + 1).astype(int)
    for s in range(p):
        assignment[order[bounds[s] : bounds[s + 1]]] = s
    return _build(mesh, assignment, keys, p)


def partition_bisection(mesh: Mesh, p: int) -> List[Subdomain]:
    """Recursive coordinate bisection into *p* parts (any p >= 1).

    Splits the current element set along its wider coordinate axis at
    the weighted median, recursing with part counts split as evenly as
    possible.
    """
    if p < 1:
        raise MeshError(f"need at least one partition, got {p}")
    cents, keys = _centroids(mesh)
    n_elems = len(keys)
    p = min(p, n_elems)
    assignment = np.zeros(n_elems, dtype=int)

    def recurse(idx: np.ndarray, parts: int, base: int) -> None:
        if parts == 1 or idx.size <= 1:
            assignment[idx] = base
            return
        left_parts = parts // 2
        span = cents[idx].max(axis=0) - cents[idx].min(axis=0)
        axis = int(np.argmax(span))
        order = idx[np.argsort(cents[idx, axis], kind="stable")]
        cut = (idx.size * left_parts) // parts
        recurse(order[:cut], left_parts, base)
        recurse(order[cut:], parts - left_parts, base + left_parts)

    recurse(np.arange(n_elems), p, 0)
    return _build(mesh, assignment, keys, p)


def shared_nodes(subs: List[Subdomain]) -> np.ndarray:
    """Nodes appearing in more than one subdomain (the seams)."""
    counts: Dict[int, int] = {}
    for sub in subs:
        for n in sub.nodes:
            counts[n] = counts.get(n, 0) + 1
    return np.array(sorted(n for n, c in counts.items() if c > 1), dtype=int)


def interface_dofs(mesh: Mesh, subs: List[Subdomain]) -> np.ndarray:
    """All DOFs on shared nodes, sorted."""
    nodes = shared_nodes(subs)
    d = mesh.dofs_per_node
    return (nodes[:, None] * d + np.arange(d)[None, :]).ravel()


def partition_stats(mesh: Mesh, subs: List[Subdomain]) -> Dict[str, float]:
    """Balance and seam metrics for the partitioning tables."""
    sizes = [s.n_elements for s in subs]
    return {
        "parts": len(subs),
        "elements": sum(sizes),
        "max_elements": max(sizes) if sizes else 0,
        "imbalance": (max(sizes) / (sum(sizes) / len(sizes))) if sizes and sum(sizes) else 1.0,
        "shared_nodes": int(shared_nodes(subs).size),
        "mean_hull_words": float(np.mean([s.hull_words for s in subs])) if subs else 0.0,
    }
