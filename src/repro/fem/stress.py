"""Element stress recovery ("Calculate stresses")."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import FEMError
from .elements import element_type
from .materials import Material
from .mesh import Mesh


def recover_stresses(
    mesh: Mesh, material: Material, u: np.ndarray
) -> Dict[str, np.ndarray]:
    """Per element type: stresses (E, n_components) from displacements."""
    u = np.asarray(u, dtype=float)
    if u.shape[0] != mesh.n_dofs:
        raise FEMError(f"displacement vector has {u.shape[0]} dofs, mesh has {mesh.n_dofs}")
    out = {}
    for name in mesh.groups:
        et = element_type(name)
        dofs = mesh.element_dofs(name)
        out[name] = et.stress(mesh.element_coords(name), material, u[dofs])
    return out


def von_mises_plane(sigma: np.ndarray) -> np.ndarray:
    """Von Mises equivalent stress from (E, 3) plane components."""
    sigma = np.asarray(sigma, dtype=float)
    if sigma.ndim != 2 or sigma.shape[1] != 3:
        raise FEMError(f"expected (E, 3) plane stresses, got {sigma.shape}")
    sxx, syy, sxy = sigma[:, 0], sigma[:, 1], sigma[:, 2]
    return np.sqrt(sxx**2 - sxx * syy + syy**2 + 3.0 * sxy**2)


def max_stress_summary(stresses: Dict[str, np.ndarray]) -> Dict[str, float]:
    """Peak |stress| per element type — what the workstation displays."""
    out = {}
    for name, s in stresses.items():
        out[name] = float(np.abs(s).max()) if s.size else 0.0
    return out


def stress_flops(mesh: Mesh) -> int:
    """Estimated recovery cost: one B-matrix application per element."""
    total = 0
    for name, conn in mesh.groups.items():
        et = element_type(name)
        nd = et.dofs_per_element
        total += conn.shape[0] * 4 * nd * len(et.stress_components or (1,))
    return total
