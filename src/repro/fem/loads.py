"""Load sets.

"Data objects: ... Load set" / "Solve structure model/load set for
displacements" — load sets are first-class, named objects so one model
can be solved under several loadings (and several *independent* load
sets give the outermost level of parallelism).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..errors import FEMError
from .mesh import Mesh


class LoadSet:
    """Named collection of nodal loads (and gravity body load)."""

    def __init__(self, name: str = "load") -> None:
        self.name = name
        self._nodal: Dict[Tuple[int, int], float] = {}
        self._gravity: Tuple[float, float] = (0.0, 0.0)

    def add_nodal(self, node: int, comp: int, value: float) -> "LoadSet":
        """Add a point load at (node, dof component); accumulates."""
        key = (int(node), int(comp))
        self._nodal[key] = self._nodal.get(key, 0.0) + float(value)
        return self

    def add_nodal_many(self, nodes: Iterable[int], comp: int, value: float) -> "LoadSet":
        for n in nodes:
            self.add_nodal(n, comp, value)
        return self

    def set_gravity(self, gx: float, gy: float) -> "LoadSet":
        """Uniform acceleration applied through lumped nodal masses."""
        self._gravity = (float(gx), float(gy))
        return self

    def vector(self, mesh: Mesh) -> np.ndarray:
        """Assemble the global load vector for *mesh*."""
        f = np.zeros(mesh.n_dofs)
        for (node, comp), value in self._nodal.items():
            f[mesh.dof(node, comp)] += value
        gx, gy = self._gravity
        if gx or gy:
            f += self._gravity_vector(mesh, gx, gy)
        return f

    def _gravity_vector(self, mesh: Mesh, gx: float, gy: float) -> np.ndarray:
        """Lumped-mass gravity: each element spreads rho*V*g equally to
        its nodes (translational DOFs only)."""
        from .elements import element_type
        from .materials import STEEL

        f = np.zeros(mesh.n_dofs)
        for name, conn in mesh.groups.items():
            et = element_type(name)
            coords = mesh.element_coords(name)
            if name == "bar2d" or name == "beam2d":
                length = np.linalg.norm(coords[:, 1] - coords[:, 0], axis=1)
                vol = length * STEEL.area
            elif name == "tri3":
                x, y = coords[:, :, 0], coords[:, :, 1]
                area2 = (
                    x[:, 0] * (y[:, 1] - y[:, 2])
                    + x[:, 1] * (y[:, 2] - y[:, 0])
                    + x[:, 2] * (y[:, 0] - y[:, 1])
                )
                vol = np.abs(area2) / 2.0 * STEEL.thickness
            else:  # quad4: split into two triangles
                x, y = coords[:, :, 0], coords[:, :, 1]
                a1 = np.abs(
                    x[:, 0] * (y[:, 1] - y[:, 2]) + x[:, 1] * (y[:, 2] - y[:, 0])
                    + x[:, 2] * (y[:, 0] - y[:, 1])
                ) / 2.0
                a2 = np.abs(
                    x[:, 0] * (y[:, 2] - y[:, 3]) + x[:, 2] * (y[:, 3] - y[:, 0])
                    + x[:, 3] * (y[:, 0] - y[:, 2])
                ) / 2.0
                vol = (a1 + a2) * STEEL.thickness
            share = STEEL.density * vol / et.nodes_per_element
            for comp, g in ((0, gx), (1, gy)):
                if g:
                    np.add.at(
                        f,
                        conn.ravel() * mesh.dofs_per_node + comp,
                        np.repeat(share * g, et.nodes_per_element),
                    )
        return f

    @property
    def n_loads(self) -> int:
        return len(self._nodal)

    def scaled(self, factor: float) -> "LoadSet":
        """A new load set with every load multiplied by *factor*."""
        out = LoadSet(f"{self.name}*{factor:g}")
        for (node, comp), value in self._nodal.items():
            out.add_nodal(node, comp, value * factor)
        gx, gy = self._gravity
        out.set_gravity(gx * factor, gy * factor)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LoadSet({self.name!r}, {self.n_loads} nodal loads)"
