"""The host-side static solve: "Solve structure model/load set for
displacements" — the correctness oracle for everything the simulated
machine computes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import SolverError
from .assembly import assemble_stiffness
from .bc import Constraints
from .loads import LoadSet
from .materials import Material
from .mesh import Mesh
from .solvers import SolveResult, solve_linear
from .stress import recover_stresses


@dataclass
class StaticResult:
    """Displacements plus solver info and (optionally) stresses."""

    u: np.ndarray
    solver: SolveResult
    reactions: np.ndarray
    stresses: Optional[Dict[str, np.ndarray]] = None

    def displacement_at(self, mesh: Mesh, node: int, comp: int) -> float:
        return float(self.u[mesh.dof(node, comp)])


def static_solve(
    mesh: Mesh,
    material: Material,
    constraints: Constraints,
    loads: LoadSet,
    method: str = "sparse_lu",
    with_stresses: bool = False,
    **solver_kw,
) -> StaticResult:
    """Assemble, reduce, solve, expand — one stop for examples/tests."""
    k = assemble_stiffness(mesh, material)
    f = loads.vector(mesh)
    k_ff, f_f = constraints.reduce(k, f)
    if k_ff.shape[0] == 0:
        raise SolverError("no free degrees of freedom")
    result = solve_linear(k_ff, f_f, method=method, **solver_kw)
    if not result.converged:
        raise SolverError(
            f"{method} did not converge ({result.iterations} iterations, "
            f"residual {result.residual_norm:g})"
        )
    u = constraints.expand(result.x)
    reactions = constraints.reactions(k, u, f)
    stresses = recover_stresses(mesh, material, u) if with_stresses else None
    return StaticResult(u=u, solver=result, reactions=reactions, stresses=stresses)
