"""Iterative solvers: conjugate gradient, Jacobi, and SOR.

CG is the solver the FEM-2 scenario analyses (ref [8]) centre on: its
inner products, axpys, and matvec map directly onto the numerical
analyst's linear-algebra operations, and it is what the distributed
solver (:mod:`repro.fem.parallel`) runs on the simulated machine.
These host-side versions are the correctness oracles and the baselines
for E9.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ...errors import SolverError
from .result import SolveResult


def _as_matvec(a):
    """Accept dense, sparse, or callable operators; return (matvec, n, diag)."""
    if callable(a) and not hasattr(a, "shape"):
        raise SolverError("callable operators must be passed as (matvec, n, diag)")
    if sp.issparse(a):
        a = a.tocsr()
        return (lambda v: a @ v), a.shape[0], a.diagonal()
    a = np.asarray(a, dtype=float)
    return (lambda v: a @ v), a.shape[0], np.diag(a).copy()


def conjugate_gradient(
    a,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    preconditioner: str = "none",
    callback: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Preconditioned conjugate gradient for SPD systems.

    Convergence test: ||r|| <= tol * ||b||.  ``preconditioner`` is
    ``"none"`` or ``"jacobi"`` (diagonal scaling).
    """
    matvec, n, diag = _as_matvec(a)
    b = np.asarray(b, dtype=float)
    if b.shape[0] != n:
        raise SolverError(f"rhs length {b.shape[0]} != n {n}")
    if preconditioner not in ("none", "jacobi"):
        raise SolverError(f"unknown preconditioner {preconditioner!r}")
    if preconditioner == "jacobi" and np.any(diag <= 0):
        raise SolverError("Jacobi preconditioner needs positive diagonal")
    max_iter = 10 * n if max_iter is None else max_iter

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    r = b - matvec(x)
    z = r / diag if preconditioner == "jacobi" else r
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.linalg.norm(r))]
    flops = 0
    it = 0
    nnz_cost = 2 * n * n  # per-matvec flops for a dense operator
    if sp.issparse(a):
        nnz_cost = 2 * a.nnz

    while history[-1] > tol * b_norm and it < max_iter:
        q = matvec(p)
        pq = float(p @ q)
        if pq <= 0:
            raise SolverError(f"matrix not SPD: p'Ap = {pq:g} at iteration {it}")
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        z = r / diag if preconditioner == "jacobi" else r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
        it += 1
        res = float(np.linalg.norm(r))
        history.append(res)
        flops += nnz_cost + 10 * n
        if callback is not None:
            callback(it, res)

    return SolveResult(
        x,
        "cg" if preconditioner == "none" else "pcg_jacobi",
        converged=history[-1] <= tol * b_norm,
        iterations=it,
        residual_norm=history[-1],
        flops=flops,
        residual_history=history,
    )


def jacobi(
    a,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iter: int = 10_000,
) -> SolveResult:
    """Jacobi iteration: x_{k+1} = D^{-1}(b - (A - D) x_k)."""
    matvec, n, diag = _as_matvec(a)
    b = np.asarray(b, dtype=float)
    if np.any(diag == 0):
        raise SolverError("Jacobi needs a nonzero diagonal")
    x = np.zeros(n)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = []
    flops = 0
    nnz_cost = 2 * a.nnz if sp.issparse(a) else 2 * n * n
    for it in range(1, max_iter + 1):
        r = b - matvec(x)
        res = float(np.linalg.norm(r))
        history.append(res)
        flops += nnz_cost + 4 * n
        if res <= tol * b_norm:
            return SolveResult(
                x, "jacobi", True, it - 1, res, flops, residual_history=history
            )
        if not np.isfinite(res) or res > 1e12 * (history[0] or 1.0):
            # divergence (the iteration matrix has spectral radius >= 1)
            return SolveResult(
                x, "jacobi", False, it, res, flops, residual_history=history
            )
        x = x + r / diag
    return SolveResult(
        x, "jacobi", False, max_iter, history[-1], flops, residual_history=history
    )


def _sor_sweep_factory(a, diag: np.ndarray, omega: float):
    """Build the per-sweep update ``x -> x_next`` for SOR.

    The sweep ``(D/ω + L) x_next = b − (U + (1 − 1/ω) D) x`` is a
    triangular solve per iteration.  The triangular factor is constant,
    so we LU-factorise it once (``permc_spec="NATURAL"`` keeps the
    ordering — the factor is already triangular, there is no fill) and
    each sweep becomes one sparse matvec plus one back-substitution —
    orders of magnitude faster than a Python loop over rows, with the
    same fixed point and the same iterate sequence up to float rounding
    of the identical per-row recurrence.  Falls back to the explicit
    row loop when the splu path is unavailable (e.g. a SciPy build
    without SuperLU).
    """
    n = a.shape[0]
    lower = sp.tril(a, k=-1, format="csr")
    upper = sp.triu(a, k=1, format="csr")
    d = sp.diags(diag)
    try:
        from scipy.sparse.linalg import splu

        m = (d / omega + lower).tocsc()
        lu = splu(m, permc_spec="NATURAL")
        rhs_mat = (upper + (1.0 - 1.0 / omega) * d).tocsr()

        def sweep(x: np.ndarray, b: np.ndarray) -> np.ndarray:
            return lu.solve(b - rhs_mat @ x)

        return sweep
    except ImportError:  # pragma: no cover - SuperLU is in every SciPy we target
        indptr, indices, data = a.indptr, a.indices, a.data

        def sweep(x: np.ndarray, b: np.ndarray) -> np.ndarray:
            x = x.copy()
            for i in range(n):
                row = slice(indptr[i], indptr[i + 1])
                sigma = data[row] @ x[indices[row]] - diag[i] * x[i]
                x[i] += omega * ((b[i] - sigma) / diag[i] - x[i])
            return x

        return sweep


def sor(
    a,
    b: np.ndarray,
    omega: float = 1.5,
    tol: float = 1e-8,
    max_iter: int = 10_000,
) -> SolveResult:
    """Successive over-relaxation (Gauss-Seidel when omega = 1).

    The sweep is inherently sequential per unknown; it is applied as a
    factored triangular solve (see :func:`_sor_sweep_factory`), so the
    cost is O(nnz) per sweep with no Python-level row loop.
    """
    if not 0 < omega < 2:
        raise SolverError(f"SOR requires 0 < omega < 2, got {omega}")
    a = sp.csr_matrix(a) if not sp.issparse(a) else a.tocsr()
    b = np.asarray(b, dtype=float)
    n = a.shape[0]
    diag = a.diagonal()
    if np.any(diag == 0):
        raise SolverError("SOR needs a nonzero diagonal")
    x = np.zeros(n)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = []
    flops = 0
    sweep = _sor_sweep_factory(a, diag, omega)
    for it in range(1, max_iter + 1):
        x = sweep(x, b)
        r = b - a @ x
        res = float(np.linalg.norm(r))
        history.append(res)
        flops += 4 * a.nnz + 6 * n
        if res <= tol * b_norm:
            return SolveResult(
                x, f"sor({omega:g})", True, it, res, flops, residual_history=history
            )
    return SolveResult(
        x, f"sor({omega:g})", False, max_iter, history[-1], flops,
        residual_history=history,
    )
