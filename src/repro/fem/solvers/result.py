"""Common result type for linear solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class SolveResult:
    """Outcome of one linear solve.

    ``flops`` is the solver's own estimate of floating-point work, used
    by the analysis package to cross-check simulator measurements.
    """

    x: np.ndarray
    method: str
    converged: bool = True
    iterations: int = 0
    residual_norm: float = 0.0
    flops: int = 0
    residual_history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
