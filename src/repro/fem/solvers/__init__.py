"""Linear solvers: direct (sparse LU, dense Cholesky) and iterative
(CG, Jacobi, SOR), all returning :class:`SolveResult`.

:func:`solve_linear` is the one entry point — callers name the method;
the ``SOLVERS`` registry dict stays public for enumeration (benchmark
sweeps) but direct ``SOLVERS[...]`` indexing is deprecated in favour of
the facade, which validates the method name.
"""

from ...errors import SolverError
from .result import SolveResult
from .direct import (
    cholesky_factor,
    cholesky_solve_factored,
    solve_cholesky,
    solve_sparse_lu,
)
from .iterative import conjugate_gradient, jacobi, sor

#: name -> callable(k, f, **kw); enumerate for sweeps, call via solve_linear
SOLVERS = {
    "sparse_lu": solve_sparse_lu,
    "cholesky": solve_cholesky,
    "cg": conjugate_gradient,
    "pcg_jacobi": lambda a, b, **kw: conjugate_gradient(
        a, b, preconditioner="jacobi", **kw
    ),
    "jacobi": jacobi,
    "sor": sor,
}


def solve_linear(k, f, *, method: str = "sparse_lu", **kw) -> SolveResult:
    """Solve ``k x = f`` with the named method from the solver registry.

    The single facade over ``SOLVERS``: validates the method name (with
    the available names in the error) and forwards solver keywords
    (``tol``, ``max_iter``, ``preconditioner``, ...).
    """
    try:
        solver = SOLVERS[method]
    except KeyError:
        raise SolverError(
            f"unknown method {method!r}; one of {sorted(SOLVERS)}"
        ) from None
    return solver(k, f, **kw)


__all__ = [
    "SolveResult",
    "cholesky_factor",
    "cholesky_solve_factored",
    "solve_cholesky",
    "solve_sparse_lu",
    "conjugate_gradient",
    "jacobi",
    "sor",
    "solve_linear",
    "SOLVERS",
]
