"""Linear solvers: direct (sparse LU, dense Cholesky) and iterative
(CG, Jacobi, SOR), all returning :class:`SolveResult`."""

from .result import SolveResult
from .direct import (
    cholesky_factor,
    cholesky_solve_factored,
    solve_cholesky,
    solve_sparse_lu,
)
from .iterative import conjugate_gradient, jacobi, sor

#: name -> callable(k, f, **kw) for benchmark sweeps
SOLVERS = {
    "sparse_lu": solve_sparse_lu,
    "cholesky": solve_cholesky,
    "cg": conjugate_gradient,
    "pcg_jacobi": lambda a, b, **kw: conjugate_gradient(
        a, b, preconditioner="jacobi", **kw
    ),
    "jacobi": jacobi,
    "sor": sor,
}

__all__ = [
    "SolveResult",
    "cholesky_factor",
    "cholesky_solve_factored",
    "solve_cholesky",
    "solve_sparse_lu",
    "conjugate_gradient",
    "jacobi",
    "sor",
    "SOLVERS",
]
