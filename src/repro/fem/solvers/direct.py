"""Direct solvers: sparse LU (scipy) and an explicit dense Cholesky.

The Cholesky factorization is written out (vectorized per column) both
as the baseline "fast linear algebra" kernel the hardware requirements
call for and so its flop count is exact for the E1/E9 processing
tables: n^3/3 + O(n^2).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ...errors import SolverError
from .result import SolveResult


def solve_sparse_lu(k, f: np.ndarray) -> SolveResult:
    """Sparse LU via scipy's SuperLU wrapper."""
    f = np.asarray(f, dtype=float)
    k = sp.csc_matrix(k)
    n = k.shape[0]
    if k.shape[0] != k.shape[1] or f.shape[0] != n:
        raise SolverError(f"shape mismatch: K {k.shape}, f {f.shape}")
    try:
        x = spla.spsolve(k, f)
    except Exception as exc:  # singular / structurally deficient
        raise SolverError(f"sparse LU failed: {exc}") from exc
    if not np.all(np.isfinite(x)):
        raise SolverError("sparse LU produced non-finite solution (singular K?)")
    resid = float(np.linalg.norm(k @ x - f))
    f_norm = float(np.linalg.norm(f))
    if f_norm > 0 and resid > 1e-6 * f_norm:
        raise SolverError(
            f"sparse LU residual {resid:g} vs ||f|| {f_norm:g}: "
            "system is singular or severely ill-conditioned"
        )
    # LU on a banded/sparse SPD matrix ~ 2/3 n b^2; report dense-equivalent
    return SolveResult(
        x, "sparse_lu", converged=True, residual_norm=resid,
        flops=int(2 * n**3 / 3),
    )


def cholesky_factor(a: np.ndarray) -> np.ndarray:
    """Lower-triangular L with A = L L^T (column-blocked, vectorized).

    Raises :class:`SolverError` if A is not (numerically) SPD.
    """
    a = np.array(a, dtype=float)
    n = a.shape[0]
    if a.shape != (n, n):
        raise SolverError(f"Cholesky needs a square matrix, got {a.shape}")
    l = np.zeros_like(a)
    for j in range(n):
        d = a[j, j] - np.dot(l[j, :j], l[j, :j])
        if d <= 0.0 or not np.isfinite(d):
            raise SolverError(
                f"matrix not positive definite at column {j} (pivot {d:g})"
            )
        l[j, j] = np.sqrt(d)
        if j + 1 < n:
            l[j + 1 :, j] = (a[j + 1 :, j] - l[j + 1 :, :j] @ l[j, :j]) / l[j, j]
    return l


def cholesky_solve_factored(l: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Forward/back substitution with a Cholesky factor."""
    from scipy.linalg import solve_triangular

    y = solve_triangular(l, f, lower=True)
    return solve_triangular(l.T, y, lower=False)


def solve_cholesky(k, f: np.ndarray) -> SolveResult:
    """Dense Cholesky solve with exact flop accounting."""
    k = k.toarray() if sp.issparse(k) else np.asarray(k, dtype=float)
    f = np.asarray(f, dtype=float)
    n = k.shape[0]
    l = cholesky_factor(k)
    x = cholesky_solve_factored(l, f)
    resid = float(np.linalg.norm(k @ x - f))
    flops = n**3 // 3 + 2 * n * n  # factorization + two triangular solves
    return SolveResult(x, "cholesky", converged=True, residual_norm=resid, flops=flops)
