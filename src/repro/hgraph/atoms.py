"""Atoms: the primitive node values of H-graph semantics.

In Pratt's model a node is an abstract storage location whose value is
either an *atom* (an uninterpreted primitive) or another graph.  We admit
the Python primitives that the FEM-2 specifications need — integers,
floats, strings, booleans, and ``None`` — plus a small tagged symbol type
used by grammars that want enumerated atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Python types accepted as atomic node values.
ATOM_TYPES = (int, float, str, bool, type(None))


@dataclass(frozen=True)
class Symbol:
    """An interned enumerated atom, e.g. ``Symbol("ready")``.

    Symbols compare by name and print as ``'name``, following the LISP
    convention used in Pratt's examples.
    """

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"'{self.name}"


def is_atom(value: Any) -> bool:
    """Return True if *value* may be stored directly in a node.

    Graphs are not atoms; neither are containers.  ``bool`` is checked
    before ``int`` only conceptually — ``isinstance`` covers both.
    """
    return isinstance(value, ATOM_TYPES) or isinstance(value, Symbol)


def atom_kind(value: Any) -> str:
    """Classify an atom into the kind names used by grammars.

    Kinds: ``int``, ``float``, ``str``, ``bool``, ``null``, ``symbol``.
    """
    if isinstance(value, Symbol):
        return "symbol"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    raise TypeError(f"not an atom: {value!r}")
