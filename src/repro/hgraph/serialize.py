"""Serialization of H-graphs to plain dictionaries.

Used by the application-level model database (``repro.appvm.database``)
to store formally-specified data objects, and by tests as a structural
equality oracle.  Node identity, shared substructure, and cycles are
preserved because the encoding is id-based.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import HGraphError
from .atoms import Symbol, is_atom
from .graph import Graph, HGraph


def _encode_value(value: Any) -> Any:
    if isinstance(value, Graph):
        return {"$graph": value.gid}
    if isinstance(value, Symbol):
        return {"$symbol": value.name}
    if is_atom(value):
        return value
    raise HGraphError(f"unencodable node value {value!r}")


def _decode_value(enc: Any, graphs: Dict[int, Graph]) -> Any:
    if isinstance(enc, dict):
        if "$graph" in enc:
            return graphs[enc["$graph"]]
        if "$symbol" in enc:
            return Symbol(enc["$symbol"])
        raise HGraphError(f"unknown encoded value {enc!r}")
    return enc


def to_dict(hg: HGraph) -> Dict[str, Any]:
    """Encode an entire H-graph (all nodes and graphs) as a dict."""
    nodes = {
        str(n.nid): {"label": n.label, "value": _encode_value(n.value)}
        for n in hg.nodes()
    }
    graphs = {}
    for g in hg.graphs():
        graphs[str(g.gid)] = {
            "root": g.root.nid,
            "members": [n.nid for n in g.nodes()],
            "arcs": [[src.nid, label, dst.nid] for src, label, dst in g.arcs()],
        }
    return {"name": hg.name, "nodes": nodes, "graphs": graphs}


def from_dict(data: Dict[str, Any]) -> HGraph:
    """Rebuild an H-graph from :func:`to_dict` output.

    Node and graph ids are preserved, so round-tripping is the identity
    on the encoded form.
    """
    hg = HGraph(data.get("name", "hgraph"))
    node_specs = data["nodes"]
    graph_specs = data["graphs"]

    # First pass: create all nodes with placeholder values, all graphs empty.
    nodes = {}
    for nid_str, spec in node_specs.items():
        nid = int(nid_str)
        node = hg.new_node(None, label=spec["label"])
        if node.nid != nid:
            raise HGraphError("non-contiguous node ids in serialized H-graph")
        nodes[nid] = node

    graphs: Dict[int, Graph] = {}
    for gid_str, spec in graph_specs.items():
        gid = int(gid_str)
        g = hg.new_graph(nodes[spec["root"]])
        if g.gid != gid:
            raise HGraphError("non-contiguous graph ids in serialized H-graph")
        graphs[gid] = g

    # Second pass: arcs, members, then values (which may reference graphs).
    for gid_str, spec in graph_specs.items():
        g = graphs[int(gid_str)]
        for nid in spec["members"]:
            g.add_member(nodes[nid])
        for src, label, dst in spec["arcs"]:
            g.set_arc(nodes[src], label, nodes[dst])
    for nid_str, spec in node_specs.items():
        nodes[int(nid_str)].set_value(_decode_value(spec["value"], graphs))
    return hg


def graph_signature(g: Graph) -> tuple:
    """A hashable structural signature of the part of *g* reachable from
    its root: used to compare graphs up to node identity."""
    order = {n.nid: i for i, n in enumerate(g.reachable())}

    def val(n):
        if isinstance(n.value, Graph):
            return ("graph", graph_signature(n.value))
        return ("atom", n.value)

    rows = []
    for n in g.reachable():
        arcs = tuple(
            (label, order[t.nid]) for label, t in sorted(g.arcs_from(n).items())
        )
        rows.append((order[n.nid], val(n), arcs))
    return tuple(rows)
