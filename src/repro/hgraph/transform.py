"""H-graph transforms: operations on H-graph data objects.

The paper: "Operations (procedures) on the data objects are modeled as
'H-graph transforms', which are functions defining transformations on
the H-graph models of data objects.  H-graph transforms may invoke each
other in the usual manner of subprogram calling hierarchies."

A :class:`Transform` wraps a Python function ``fn(ctx, hg, *args)``;
``ctx`` is the interpreter's call context (see
:mod:`repro.hgraph.interpreter`), through which the transform may invoke
other transforms.  Transforms may declare pre- and post-conditions as
grammar memberships, which the interpreter checks when verification is
enabled — this is what "formally specified" buys the design process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import TransformError
from .grammar import Grammar
from .graph import Graph


@dataclass(frozen=True)
class Condition:
    """A grammar-membership condition on an argument or the result.

    ``subject`` is an argument index (0-based) or the string ``"result"``.
    The subject must be a :class:`~repro.hgraph.graph.Graph`; membership
    is checked at its root against ``symbol`` (grammar start if None).
    """

    subject: Any
    grammar: Grammar
    symbol: Optional[str] = None

    def describe(self) -> str:
        where = "result" if self.subject == "result" else f"arg[{self.subject}]"
        sym = self.symbol or self.grammar.start
        return f"{where} in {self.grammar.name}.{sym}"


@dataclass
class Transform:
    """A named H-graph transform with optional formal conditions."""

    name: str
    fn: Callable[..., Any]
    pre: List[Condition] = field(default_factory=list)
    post: List[Condition] = field(default_factory=list)
    doc: str = ""

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TransformError(f"transform {self.name!r}: fn is not callable")

    def require(self, subject: Any, grammar: Grammar, symbol: Optional[str] = None) -> "Transform":
        """Add a pre-condition; returns self for chaining."""
        self.pre.append(Condition(subject, grammar, symbol))
        return self

    def ensure(self, grammar: Grammar, symbol: Optional[str] = None) -> "Transform":
        """Add a post-condition on the result; returns self for chaining."""
        self.post.append(Condition("result", grammar, symbol))
        return self


def transform(
    name: Optional[str] = None,
    pre: Sequence[Tuple[Any, Grammar]] = (),
    post: Sequence[Grammar] = (),
    doc: str = "",
) -> Callable[[Callable[..., Any]], Transform]:
    """Decorator form: ``@transform()`` over ``fn(ctx, hg, *args)``.

    ``pre`` is a sequence of ``(arg_index, grammar)`` pairs, ``post`` a
    sequence of grammars for the result.
    """

    def wrap(fn: Callable[..., Any]) -> Transform:
        t = Transform(name or fn.__name__, fn, doc=doc or (fn.__doc__ or ""))
        for subject, g in pre:
            t.require(subject, g)
        for g in post:
            t.ensure(g)
        return t

    return wrap


def check_condition(cond: Condition, value: Any) -> None:
    """Raise :class:`TransformError` if *value* violates *cond*."""
    from .matcher import Matcher

    if not isinstance(value, Graph):
        raise TransformError(
            f"condition {cond.describe()}: subject is not a Graph "
            f"(got {type(value).__name__})"
        )
    report = Matcher(cond.grammar).check(value, symbol=cond.symbol)
    if not report.ok:
        detail = "; ".join(report.failures[:3])
        raise TransformError(f"condition {cond.describe()} violated: {detail}")
