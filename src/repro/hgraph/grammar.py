"""H-graph grammars: BNF-style definitions of classes of H-graphs.

The paper: "Data types are modeled using formal 'H-graph grammars', a
type of BNF grammar in which the 'language' defined is a set of H-graphs
representing a class of data objects."

A grammar maps *symbols* (nonterminals) to *forms*.  A form is matched
against a pair ``(graph, node)`` — a node viewed inside one graph of the
hierarchy:

``AtomKind(kind)``
    the node's value is an atom of the given kind (``"any"`` accepts
    every atom, including graph-valued nodes' atoms — but not graphs).
``Const(value)``
    the node's value equals a specific atom.
``Struct(arcs, closed=True, value=None)``
    the node's outgoing arcs *in the current graph* carry at least the
    given labels, each target matching its sub-form; ``closed`` forbids
    extra labels; ``value``, if given, constrains the node's own value.
``Sub(form)``
    the node's value is a (sub)graph whose root matches *form* — this is
    the hierarchy-descent step that makes the grammar an H-graph grammar.
``Alt(*forms)``
    ordered alternatives.
``Ref(symbol)``
    a nonterminal reference.
``Any()``
    matches every node.

Recursive productions describe both recursive and *cyclic* data: the
matcher (see :mod:`repro.hgraph.matcher`) computes the greatest fixed
point, so a circular list is a member of the usual list grammar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import GrammarError
from .atoms import atom_kind, is_atom

_KINDS = {"int", "float", "str", "bool", "null", "symbol", "number", "any"}


class Form:
    """Base class of grammar forms.  Forms are immutable and hashable."""

    __slots__ = ()


@dataclass(frozen=True)
class AtomKind(Form):
    """Matches a node whose value is an atom of *kind*.

    ``"number"`` accepts int or float; ``"any"`` accepts any atom.
    """

    kind: str = "any"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise GrammarError(f"unknown atom kind {self.kind!r}; one of {sorted(_KINDS)}")

    def accepts(self, value: Any) -> bool:
        if not is_atom(value):
            return False
        if self.kind == "any":
            return True
        k = atom_kind(value)
        if self.kind == "number":
            return k in ("int", "float")
        return k == self.kind


@dataclass(frozen=True)
class Const(Form):
    """Matches a node whose value equals *value* (an atom)."""

    value: Any

    def __post_init__(self) -> None:
        if not is_atom(self.value):
            raise GrammarError("Const form requires an atomic value")


@dataclass(frozen=True)
class Struct(Form):
    """Matches a node by the labelled arcs leaving it in the current graph."""

    arcs: Tuple[Tuple[str, Form], ...]
    closed: bool = True
    value: Optional[Form] = None

    def __init__(
        self,
        arcs: Any = (),
        closed: bool = True,
        value: Optional[Form] = None,
    ) -> None:
        if isinstance(arcs, dict):
            arcs = tuple(sorted(arcs.items()))
        else:
            arcs = tuple(arcs)
        for item in arcs:
            if not (isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], Form)):
                raise GrammarError(f"Struct arc must be (label, Form), got {item!r}")
        object.__setattr__(self, "arcs", arcs)
        object.__setattr__(self, "closed", closed)
        object.__setattr__(self, "value", value)

    def labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.arcs)


@dataclass(frozen=True)
class Sub(Form):
    """Matches a node whose value is a graph; *form* applies to its root."""

    form: Form

    def __post_init__(self) -> None:
        if not isinstance(self.form, Form):
            raise GrammarError("Sub requires a Form")


@dataclass(frozen=True)
class Alt(Form):
    """Ordered alternatives; matches if any alternative matches."""

    forms: Tuple[Form, ...]

    def __init__(self, *forms: Form) -> None:
        flat = []
        for f in forms:
            if not isinstance(f, Form):
                raise GrammarError("Alt requires Forms")
            flat.append(f)
        if len(flat) < 2:
            raise GrammarError("Alt needs at least two alternatives")
        object.__setattr__(self, "forms", tuple(flat))


@dataclass(frozen=True)
class Ref(Form):
    """A nonterminal reference to another grammar symbol."""

    symbol: str


@dataclass(frozen=True)
class Any_(Form):
    """Matches every node (atomic or graph-valued)."""


def Any() -> Any_:
    """Convenience constructor, so callers write ``Any()`` like other forms."""
    return Any_()


@dataclass
class Grammar:
    """A named set of productions ``symbol -> form`` with a start symbol.

    Validation checks that every :class:`Ref` resolves and the start
    symbol exists.  Grammars are the formal type definitions attached to
    the FEM-2 virtual-machine specifications (``repro.core.specs``).
    """

    name: str
    rules: Dict[str, Form] = field(default_factory=dict)
    start: Optional[str] = None

    def define(self, symbol: str, form: Form) -> "Grammar":
        """Add a production; the first defined symbol becomes the start."""
        if not isinstance(form, Form):
            raise GrammarError(f"production for {symbol!r} is not a Form")
        if symbol in self.rules:
            raise GrammarError(f"duplicate production for {symbol!r}")
        self.rules[symbol] = form
        if self.start is None:
            self.start = symbol
        return self

    def resolve(self, symbol: str) -> Form:
        try:
            return self.rules[symbol]
        except KeyError:
            raise GrammarError(f"grammar {self.name!r} has no symbol {symbol!r}") from None

    def validate(self) -> None:
        """Raise :class:`GrammarError` on dangling references or no start."""
        if self.start is None or self.start not in self.rules:
            raise GrammarError(f"grammar {self.name!r} has no valid start symbol")
        for symbol, form in self.rules.items():
            for ref in _refs(form):
                if ref not in self.rules:
                    raise GrammarError(
                        f"grammar {self.name!r}: {symbol!r} references undefined {ref!r}"
                    )

    def symbols(self) -> Tuple[str, ...]:
        return tuple(self.rules)


def _refs(form: Form):
    """Yield every Ref symbol appearing inside *form*."""
    if isinstance(form, Ref):
        yield form.symbol
    elif isinstance(form, Alt):
        for f in form.forms:
            yield from _refs(f)
    elif isinstance(form, Struct):
        if form.value is not None:
            yield from _refs(form.value)
        for _, f in form.arcs:
            yield from _refs(f)
    elif isinstance(form, Sub):
        yield from _refs(form.form)


def list_grammar(element: Form, name: str = "list") -> Grammar:
    """The canonical list grammar over ``head``/``tail`` arcs.

    Matches the shape produced by :meth:`repro.hgraph.graph.HGraph.build_list`.
    """
    g = Grammar(name)
    g.define(
        "list",
        Alt(
            Struct(arcs={"head": element, "tail": Ref("list")}, closed=True),
            Struct(arcs={}, closed=True),  # nil: no outgoing arcs
        ),
    )
    return g


def record_grammar(fields: Dict[str, Form], name: str = "record", closed: bool = True) -> Grammar:
    """A one-production grammar for a record with the given fields."""
    g = Grammar(name)
    g.define(name, Struct(arcs=fields, closed=closed))
    return g
