"""H-graph semantics (Pratt, ref [7] of the paper).

The formal-specification machinery of the FEM-2 design method: data
objects are hierarchies of directed graphs (:class:`HGraph`), data types
are H-graph grammars (:class:`Grammar`), and operations are H-graph
transforms (:class:`Transform`) executed by the :class:`Interpreter`.
"""

from .atoms import ATOM_TYPES, Symbol, atom_kind, is_atom
from .graph import Graph, HGraph, Node
from .grammar import (
    Alt,
    Any,
    Any_,
    AtomKind,
    Const,
    Form,
    Grammar,
    Ref,
    Struct,
    Sub,
    list_grammar,
    record_grammar,
)
from .matcher import Generator, MatchReport, Matcher
from .transform import Condition, Transform, transform
from .interpreter import CallContext, CallRecord, Interpreter, InterpreterStats
from .serialize import from_dict, graph_signature, to_dict
from .render import pretty, summary, to_dot

__all__ = [
    "ATOM_TYPES",
    "Symbol",
    "atom_kind",
    "is_atom",
    "Graph",
    "HGraph",
    "Node",
    "Alt",
    "Any",
    "Any_",
    "AtomKind",
    "Const",
    "Form",
    "Grammar",
    "Ref",
    "Struct",
    "Sub",
    "list_grammar",
    "record_grammar",
    "Generator",
    "MatchReport",
    "Matcher",
    "Condition",
    "Transform",
    "transform",
    "CallContext",
    "CallRecord",
    "Interpreter",
    "InterpreterStats",
    "from_dict",
    "graph_signature",
    "to_dict",
    "pretty",
    "summary",
    "to_dot",
]
