"""Rendering H-graphs: text trees and Graphviz DOT.

The design documents the method produces need readable pictures of the
formal models.  ``pretty`` renders one graph as an indented access-path
tree (cycles and sharing become back-references); ``to_dot`` emits DOT
for a whole H-graph, with subgraph-valued nodes drawn as dashed
containment edges.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .atoms import Symbol
from .graph import Graph, HGraph, Node


def _value_label(node: Node) -> str:
    if isinstance(node.value, Graph):
        return f"<g{node.value.gid}>"
    if isinstance(node.value, Symbol):
        return repr(node.value)
    if isinstance(node.value, str):
        return repr(node.value)
    return str(node.value)


def pretty(g: Graph, max_depth: int = 12) -> str:
    """An indented tree of *g* from its root; revisits print as ``^n``."""
    lines: List[str] = []
    seen: Set[int] = set()

    def walk(node: Node, label: str, depth: int) -> None:
        prefix = "  " * depth
        head = f"{prefix}{label}: " if label else prefix
        if node.nid in seen:
            lines.append(f"{head}^n{node.nid}")
            return
        seen.add(node.nid)
        lines.append(f"{head}n{node.nid} = {_value_label(node)}")
        if depth >= max_depth:
            if g.arcs_from(node):
                lines.append(f"{prefix}  ...")
            return
        for arc_label, target in sorted(g.arcs_from(node).items()):
            walk(target, arc_label, depth + 1)

    walk(g.root, "", 0)
    return "\n".join(lines)


def to_dot(hg: HGraph, name: str = "hgraph") -> str:
    """Graphviz DOT for the entire H-graph.

    Each graph becomes a cluster; arcs are solid labelled edges; a node
    whose value is a subgraph gets a dashed edge to that graph's root.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for g in hg.graphs():
        lines.append(f"  subgraph cluster_g{g.gid} {{")
        lines.append(f'    label="g{g.gid}";')
        for node in g.nodes():
            label = _value_label(node).replace('"', "'")
            shape = ', shape=ellipse' if isinstance(node.value, Graph) else ""
            root_mark = ", penwidth=2" if node is g.root else ""
            lines.append(
                f'    n{node.nid} [label="n{node.nid}\\n{label}"{shape}{root_mark}];'
            )
        for src, arc_label, dst in g.arcs():
            lines.append(f'    n{src.nid} -> n{dst.nid} [label="{arc_label}"];')
        lines.append("  }")
    # hierarchy edges: node -> subgraph root
    for node in hg.nodes():
        if isinstance(node.value, Graph):
            lines.append(
                f"  n{node.nid} -> n{node.value.root.nid} "
                f'[style=dashed, label="value"];'
            )
    lines.append("}")
    return "\n".join(lines)


def summary(hg: HGraph) -> str:
    """One-line-per-graph overview of an H-graph."""
    lines = [f"H-graph {hg.name!r}: {hg.node_count()} nodes, "
             f"{len(hg.graphs())} graphs"]
    for g in hg.graphs():
        lines.append(
            f"  g{g.gid}: root n{g.root.nid}, {len(g)} nodes, "
            f"{g.arc_count()} arcs"
        )
    return "\n".join(lines)
