"""The H-graph transform interpreter.

Runs a set of :class:`~repro.hgraph.transform.Transform` definitions as
a program: transforms invoke each other through the call context, which
maintains the calling hierarchy, enforces pre/post-conditions when
verification is on, and counts calls and steps.  The FEM-2 design uses
the formal definitions "as the basis for simulations", so the counters
here feed the design-method benchmark (E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TransformError
from .graph import HGraph
from .transform import Transform, check_condition


@dataclass
class CallRecord:
    """One entry of the call trace: transform name, depth, outcome."""

    name: str
    depth: int
    ok: bool = True


@dataclass
class InterpreterStats:
    calls: int = 0
    max_depth: int = 0
    condition_checks: int = 0


class CallContext:
    """Passed to every transform as its first argument.

    Provides :meth:`call` for invoking other transforms by name and
    access to the interpreter's H-graph.
    """

    def __init__(self, interp: "Interpreter", hg: HGraph) -> None:
        self._interp = interp
        self.hg = hg

    def call(self, name: str, *args: Any) -> Any:
        """Invoke transform *name* with *args* (subprogram call)."""
        return self._interp._invoke(name, self.hg, args)


class Interpreter:
    """Executes transforms over one H-graph, with optional verification.

    ``verify=True`` checks every declared pre/post-condition on every
    call — the formal-specification mode.  ``max_depth`` bounds the call
    hierarchy to catch runaway recursion in specifications.
    """

    def __init__(self, verify: bool = True, max_depth: int = 200, trace: bool = False) -> None:
        self._transforms: Dict[str, Transform] = {}
        self.verify = verify
        self.max_depth = max_depth
        self.trace_enabled = trace
        self.trace: List[CallRecord] = []
        self.stats = InterpreterStats()
        self._depth = 0

    # -- registry ----------------------------------------------------------

    def register(self, t: Transform) -> "Interpreter":
        if t.name in self._transforms:
            raise TransformError(f"transform {t.name!r} already registered")
        self._transforms[t.name] = t
        return self

    def register_all(self, transforms) -> "Interpreter":
        for t in transforms:
            self.register(t)
        return self

    def names(self) -> Tuple[str, ...]:
        return tuple(self._transforms)

    def get(self, name: str) -> Transform:
        try:
            return self._transforms[name]
        except KeyError:
            raise TransformError(f"unknown transform {name!r}") from None

    # -- execution -----------------------------------------------------------

    def run(self, name: str, hg: HGraph, *args: Any) -> Any:
        """Top-level invocation of transform *name* on H-graph *hg*."""
        self._depth = 0
        return self._invoke(name, hg, args)

    def _invoke(self, name: str, hg: HGraph, args: Tuple[Any, ...]) -> Any:
        t = self.get(name)
        self._depth += 1
        self.stats.calls += 1
        self.stats.max_depth = max(self.stats.max_depth, self._depth)
        if self._depth > self.max_depth:
            self._depth -= 1
            raise TransformError(
                f"call depth exceeded {self.max_depth} invoking {name!r}"
            )
        record: Optional[CallRecord] = None
        if self.trace_enabled:
            record = CallRecord(name, self._depth)
            self.trace.append(record)
        try:
            if self.verify:
                for cond in t.pre:
                    if cond.subject == "result":
                        raise TransformError(
                            f"transform {name!r}: pre-condition on 'result'"
                        )
                    idx = cond.subject
                    if not isinstance(idx, int) or idx >= len(args):
                        raise TransformError(
                            f"transform {name!r}: pre-condition subject {idx!r} "
                            f"out of range for {len(args)} args"
                        )
                    self.stats.condition_checks += 1
                    check_condition(cond, args[idx])
            ctx = CallContext(self, hg)
            result = t.fn(ctx, hg, *args)
            if self.verify:
                for cond in t.post:
                    self.stats.condition_checks += 1
                    check_condition(cond, result)
            return result
        except Exception:
            if record is not None:
                record.ok = False
            raise
        finally:
            self._depth -= 1

    def call_tree(self) -> str:
        """Render the recorded trace as an indented call tree."""
        lines = []
        for rec in self.trace:
            mark = "" if rec.ok else "  [FAILED]"
            lines.append("  " * (rec.depth - 1) + rec.name + mark)
        return "\n".join(lines)
