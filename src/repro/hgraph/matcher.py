"""Membership checking for H-graph grammars.

:class:`Matcher` decides whether a ``(graph, node)`` pair belongs to the
language of a grammar symbol.  Recursive productions over cyclic data
are handled coinductively: a (node, form) pair that is re-entered while
still being checked is *assumed to match*, which computes the greatest
fixed point — a circular list is a list.

The matcher counts elementary match steps; the design-method benchmark
(E10) reports the cost of formally checking the FEM-2 layer
specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import GrammarError
from .grammar import Alt, Any_, AtomKind, Const, Form, Grammar, Ref, Struct, Sub
from .graph import Graph, Node


@dataclass
class MatchReport:
    """Outcome of a membership check, with diagnostics on failure."""

    ok: bool
    steps: int
    failures: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


class Matcher:
    """Checks membership of H-graph values in a grammar's language."""

    def __init__(self, grammar: Grammar) -> None:
        grammar.validate()
        self.grammar = grammar
        self.steps = 0

    def matches(self, graph: Graph, node: Optional[Node] = None, symbol: Optional[str] = None) -> bool:
        """True if *node* (default: the graph root) matches *symbol*."""
        return self.check(graph, node, symbol).ok

    def check(
        self, graph: Graph, node: Optional[Node] = None, symbol: Optional[str] = None
    ) -> MatchReport:
        """Full membership check returning a :class:`MatchReport`."""
        node = graph.root if node is None else node
        sym = self.grammar.start if symbol is None else symbol
        if sym is None:
            raise GrammarError("grammar has no start symbol")
        form = self.grammar.resolve(sym)
        self.steps = 0
        failures: List[str] = []
        in_progress: Set[Tuple[int, int, int]] = set()
        done: Dict[Tuple[int, int, int], bool] = {}
        ok = self._match(graph, node, form, in_progress, done, failures, path="$")
        return MatchReport(ok=ok, steps=self.steps, failures=failures)

    # -- internals ---------------------------------------------------------

    def _match(
        self,
        graph: Graph,
        node: Node,
        form: Form,
        in_progress: Set[Tuple[int, int, int]],
        done: Dict[Tuple[int, int, int], bool],
        failures: List[str],
        path: str,
    ) -> bool:
        self.steps += 1
        key = (graph.gid, node.nid, id(form))
        if key in done:
            return done[key]
        if key in in_progress:
            # Coinductive assumption: recursion through the same state
            # succeeds, giving the greatest fixed point over cyclic data.
            return True
        in_progress.add(key)
        try:
            ok = self._match_form(graph, node, form, in_progress, done, failures, path)
        finally:
            in_progress.discard(key)
        done[key] = ok
        return ok

    def _match_form(self, graph, node, form, in_progress, done, failures, path) -> bool:
        if isinstance(form, Any_):
            return True
        if isinstance(form, Ref):
            target = self.grammar.resolve(form.symbol)
            return self._match(graph, node, target, in_progress, done, failures, path)
        if isinstance(form, Alt):
            sub_fail: List[str] = []
            for alt in form.forms:
                if self._match(graph, node, alt, in_progress, done, sub_fail, path):
                    return True
            failures.append(f"{path}: no alternative matched")
            return False
        if isinstance(form, AtomKind):
            if form.accepts(node.value):
                return True
            failures.append(f"{path}: expected atom kind {form.kind!r}, got {node.value!r}")
            return False
        if isinstance(form, Const):
            if node.is_atomic() and node.value == form.value and type(node.value) is type(form.value):
                return True
            failures.append(f"{path}: expected constant {form.value!r}, got {node.value!r}")
            return False
        if isinstance(form, Sub):
            if not isinstance(node.value, Graph):
                failures.append(f"{path}: expected a subgraph value, got {node.value!r}")
                return False
            sub = node.value
            return self._match(sub, sub.root, form.form, in_progress, done, failures, path + "/↓")
        if isinstance(form, Struct):
            arcs = graph.arcs_from(node)
            if form.closed:
                extra = set(arcs) - set(form.labels())
                if extra:
                    failures.append(f"{path}: unexpected arcs {sorted(extra)}")
                    return False
            if form.value is not None:
                if not self._match(graph, node, form.value, in_progress, done, failures, path + "@"):
                    return False
            for label, sub_form in form.arcs:
                if label not in arcs:
                    failures.append(f"{path}: missing arc {label!r}")
                    return False
                if not self._match(
                    graph, arcs[label], sub_form, in_progress, done, failures, f"{path}.{label}"
                ):
                    return False
            return True
        raise GrammarError(f"unknown form type {type(form).__name__}")


class Generator:
    """Generates member H-graphs of a grammar (for tests and examples).

    Depth-bounded: at ``max_depth`` the generator prefers non-recursive
    alternatives; if none exists it raises :class:`GrammarError`.
    Deterministic given the same ``rng``.
    """

    def __init__(self, grammar: Grammar, rng) -> None:
        grammar.validate()
        self.grammar = grammar
        self.rng = rng

    def generate(self, hg, symbol: Optional[str] = None, max_depth: int = 6):
        """Build a fresh graph in *hg* whose root matches *symbol*.

        Returns the new :class:`~repro.hgraph.graph.Graph`.
        """
        sym = self.grammar.start if symbol is None else symbol
        form = self.grammar.resolve(sym)
        g = hg.new_graph()
        self._fill(hg, g, g.root, form, max_depth)
        return g

    def _fill(self, hg, graph, node, form: Form, depth: int) -> None:
        if depth < -64:
            raise GrammarError(
                "generation depth exhausted: grammar has no terminating alternative"
            )
        if isinstance(form, Ref):
            self._fill(hg, graph, node, self.grammar.resolve(form.symbol), depth - 1)
            return
        if isinstance(form, Alt):
            forms = list(form.forms)
            if depth <= 0:
                # prefer alternatives without recursion to terminate
                leaves = [f for f in forms if not _recursive(f)]
                if not leaves:
                    raise GrammarError("cannot terminate generation: all alternatives recurse")
                forms = leaves
            self._fill(hg, graph, node, forms[self.rng.randrange(len(forms))], depth)
            return
        if isinstance(form, Any_):
            node.set_value(self.rng.randrange(100))
            return
        if isinstance(form, AtomKind):
            node.set_value(self._atom(form.kind))
            return
        if isinstance(form, Const):
            node.set_value(form.value)
            return
        if isinstance(form, Sub):
            sub = hg.new_graph()
            self._fill(hg, sub, sub.root, form.form, depth - 1)
            node.set_value(sub)
            return
        if isinstance(form, Struct):
            if form.value is not None:
                self._fill(hg, graph, node, form.value, depth)
            for label, sub_form in form.arcs:
                child = hg.new_node()
                graph.add_arc(node, label, child)
                self._fill(hg, graph, child, sub_form, depth - 1)
            return
        raise GrammarError(f"unknown form type {type(form).__name__}")

    def _atom(self, kind: str):
        from .atoms import Symbol

        r = self.rng
        if kind in ("int", "number", "any"):
            return r.randrange(-1000, 1000)
        if kind == "float":
            return r.random() * 100.0
        if kind == "str":
            return "s" + str(r.randrange(1000))
        if kind == "bool":
            return bool(r.randrange(2))
        if kind == "null":
            return None
        if kind == "symbol":
            return Symbol("sym" + str(r.randrange(10)))
        raise GrammarError(f"cannot generate atom of kind {kind!r}")


def _recursive(form: Form) -> bool:
    """True if *form* contains a nonterminal reference (may recurse)."""
    if isinstance(form, Ref):
        return True
    if isinstance(form, Alt):
        return any(_recursive(f) for f in form.forms)
    if isinstance(form, Struct):
        if form.value is not None and _recursive(form.value):
            return True
        return any(_recursive(f) for _, f in form.arcs)
    if isinstance(form, Sub):
        return _recursive(form.form)
    return False
