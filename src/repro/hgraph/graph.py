"""H-graphs: hierarchies of directed graphs over abstract storage nodes.

The model follows Pratt's H-graph semantics (the paper's ref [7]):

* A **node** is an abstract storage location.  Its *value* is either an
  atom (see :mod:`repro.hgraph.atoms`) or a :class:`Graph`.
* A **graph** is a rooted directed graph whose arcs carry labels; the
  outgoing arcs of a node within one graph have distinct labels, so a
  label sequence denotes an access *path*.
* An **H-graph** is a set of nodes together with the graphs built over
  them.  The same node may appear in several graphs (shared storage),
  which is how the FEM-2 specifications model windows and shared data.

The mutable container is :class:`HGraph`; :class:`Node` and
:class:`Graph` are owned by exactly one H-graph each.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import HGraphError
from .atoms import is_atom


class Node:
    """An abstract storage location.

    Nodes have identity (two nodes with equal values are still distinct
    locations) and a value that is an atom or a :class:`Graph`.
    """

    __slots__ = ("hg", "nid", "label", "_value")

    def __init__(self, hg: "HGraph", nid: int, label: str, value: Any) -> None:
        self.hg = hg
        self.nid = nid
        self.label = label
        self._value = value

    @property
    def value(self) -> Any:
        return self._value

    def set_value(self, value: Any) -> None:
        """Assign a new value; the H-graph records the mutation."""
        if not (is_atom(value) or isinstance(value, Graph)):
            raise HGraphError(
                f"node value must be an atom or a Graph, got {type(value).__name__}"
            )
        self._value = value
        self.hg._mutations += 1

    def is_atomic(self) -> bool:
        return not isinstance(self._value, Graph)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        v = "<graph>" if isinstance(self._value, Graph) else repr(self._value)
        return f"Node({self.nid}:{self.label}={v})"


class Graph:
    """A rooted, labelled directed graph over nodes of one H-graph.

    Outgoing labels of a node are unique within the graph, so
    ``follow(node, label)`` is a function and label sequences are access
    paths.  The node set is exactly the nodes reachable from the root
    plus any explicitly added isolated nodes.
    """

    __slots__ = ("hg", "gid", "root", "_arcs", "_members")

    def __init__(self, hg: "HGraph", gid: int, root: Node) -> None:
        self.hg = hg
        self.gid = gid
        self.root = root
        # arcs[node_id][label] -> Node
        self._arcs: Dict[int, Dict[str, Node]] = {}
        self._members: Dict[int, Node] = {root.nid: root}

    # -- membership ------------------------------------------------------

    def add_member(self, node: Node) -> None:
        """Add *node* to this graph (it may still have no arcs)."""
        self._check_same_hg(node)
        self._members[node.nid] = node

    def __contains__(self, node: Node) -> bool:
        return isinstance(node, Node) and node.nid in self._members

    def nodes(self) -> List[Node]:
        return list(self._members.values())

    def __len__(self) -> int:
        return len(self._members)

    # -- arcs ------------------------------------------------------------

    def add_arc(self, src: Node, label: str, dst: Node) -> None:
        """Add the arc ``src --label--> dst``; both nodes join the graph.

        Re-adding an existing label from *src* is an error; use
        :meth:`set_arc` to retarget an access path.
        """
        self._check_same_hg(src)
        self._check_same_hg(dst)
        out = self._arcs.setdefault(src.nid, {})
        if label in out:
            raise HGraphError(
                f"node {src.nid} already has an outgoing arc labelled {label!r}"
            )
        out[label] = dst
        self._members[src.nid] = src
        self._members[dst.nid] = dst
        self.hg._mutations += 1

    def set_arc(self, src: Node, label: str, dst: Node) -> None:
        """Add or retarget the arc ``src --label--> dst``."""
        self._check_same_hg(src)
        self._check_same_hg(dst)
        self._arcs.setdefault(src.nid, {})[label] = dst
        self._members[src.nid] = src
        self._members[dst.nid] = dst
        self.hg._mutations += 1

    def remove_arc(self, src: Node, label: str) -> None:
        out = self._arcs.get(src.nid, {})
        if label not in out:
            raise HGraphError(f"node {src.nid} has no arc labelled {label!r}")
        del out[label]
        self.hg._mutations += 1

    def arcs_from(self, node: Node) -> Dict[str, Node]:
        """The outgoing arcs of *node*, as ``{label: target}`` (a copy)."""
        return dict(self._arcs.get(node.nid, {}))

    def arcs(self) -> Iterator[Tuple[Node, str, Node]]:
        """Iterate over all arcs as (src, label, dst) triples."""
        for nid, out in self._arcs.items():
            src = self._members[nid]
            for label, dst in out.items():
                yield src, label, dst

    def arc_count(self) -> int:
        return sum(len(out) for out in self._arcs.values())

    # -- traversal ---------------------------------------------------------

    def follow(self, node: Node, label: str) -> Node:
        """Follow one arc; raise :class:`HGraphError` if absent."""
        out = self._arcs.get(node.nid, {})
        if label not in out:
            raise HGraphError(
                f"no access path {label!r} from node {node.nid} in graph {self.gid}"
            )
        return out[label]

    def path(self, labels: Sequence[str], start: Optional[Node] = None) -> Node:
        """Follow an access path (sequence of labels) from *start* or root."""
        node = self.root if start is None else start
        for label in labels:
            node = self.follow(node, label)
        return node

    def reachable(self, start: Optional[Node] = None) -> List[Node]:
        """Nodes reachable from *start* (default: the root), DFS preorder."""
        node = self.root if start is None else start
        seen: Set[int] = set()
        order: List[Node] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.nid in seen:
                continue
            seen.add(cur.nid)
            order.append(cur)
            # reversed for stable left-to-right preorder by label
            for label in sorted(self._arcs.get(cur.nid, {}), reverse=True):
                stack.append(self._arcs[cur.nid][label])
        return order

    def _check_same_hg(self, node: Node) -> None:
        if node.hg is not self.hg:
            raise HGraphError("node belongs to a different H-graph")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(gid={self.gid}, nodes={len(self)}, arcs={self.arc_count()})"


class HGraph:
    """A hierarchy of directed graphs: the universe of nodes and graphs.

    The H-graph is the unit of specification in the FEM-2 design — each
    virtual-machine data object is modelled as an H-graph whose top graph
    is returned by :meth:`new_graph`.  The ``_mutations`` counter feeds
    the design-method cost metrics (experiment E10).
    """

    def __init__(self, name: str = "hgraph") -> None:
        self.name = name
        self._nodes: Dict[int, Node] = {}
        self._graphs: Dict[int, Graph] = {}
        self._node_ids = itertools.count()
        self._graph_ids = itertools.count()
        self._mutations = 0

    # -- construction ------------------------------------------------------

    def new_node(self, value: Any = None, label: str = "") -> Node:
        """Create a fresh storage location holding *value*."""
        if not (is_atom(value) or isinstance(value, Graph)):
            raise HGraphError(
                f"node value must be an atom or a Graph, got {type(value).__name__}"
            )
        nid = next(self._node_ids)
        node = Node(self, nid, label or f"n{nid}", value)
        self._nodes[nid] = node
        return node

    def new_graph(self, root: Optional[Node] = None) -> Graph:
        """Create a graph rooted at *root* (a fresh node if omitted)."""
        if root is None:
            root = self.new_node()
        elif root.hg is not self:
            raise HGraphError("root node belongs to a different H-graph")
        gid = next(self._graph_ids)
        g = Graph(self, gid, root)
        self._graphs[gid] = g
        return g

    def subgraph_node(self, graph: Graph, label: str = "") -> Node:
        """Create a node whose value is *graph* — the hierarchy step."""
        if graph.hg is not self:
            raise HGraphError("graph belongs to a different H-graph")
        return self.new_node(graph, label=label)

    # -- inspection ----------------------------------------------------------

    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def graphs(self) -> List[Graph]:
        return list(self._graphs.values())

    @property
    def mutation_count(self) -> int:
        return self._mutations

    def node_count(self) -> int:
        return len(self._nodes)

    def stats(self) -> Dict[str, int]:
        """Size statistics used by the design-method reports."""
        return {
            "nodes": len(self._nodes),
            "graphs": len(self._graphs),
            "arcs": sum(g.arc_count() for g in self._graphs.values()),
            "mutations": self._mutations,
        }

    # -- convenience builders -------------------------------------------------

    def build_list(self, values: Iterable[Any]) -> Graph:
        """Build the canonical linked-list H-graph Pratt uses for sequences.

        Shape: root --head--> v, root --tail--> (rest | node(None)).
        Returns the graph; an empty list is a root holding ``None``.
        """
        items = list(values)
        g = self.new_graph(self.new_node(None, label="list"))
        prev = g.root
        first = True
        for v in items:
            cell = prev if first else self.new_node(None, label="cons")
            if not first:
                g.add_arc(prev, "tail", cell)
            head = v if isinstance(v, Node) else self.new_node(v)
            g.add_arc(cell, "head", head)
            prev = cell
            first = False
        if items:
            nil = self.new_node(None, label="nil")
            g.add_arc(prev, "tail", nil)
        return g

    def list_values(self, g: Graph) -> List[Any]:
        """Read back a list built by :meth:`build_list`."""
        out: List[Any] = []
        node = g.root
        while True:
            arcs = g.arcs_from(node)
            if "head" not in arcs:
                return out
            out.append(arcs["head"].value)
            if "tail" not in arcs:
                return out
            node = arcs["tail"]

    def build_record(self, fields: Dict[str, Any]) -> Graph:
        """Build a record: root with one labelled arc per field."""
        g = self.new_graph(self.new_node(None, label="record"))
        for label, v in fields.items():
            target = v if isinstance(v, Node) else self.new_node(v, label=label)
            g.add_arc(g.root, label, target)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return f"HGraph({self.name!r}, nodes={s['nodes']}, graphs={s['graphs']})"
