"""The FEM-2 observability spine: spans + structured metrics export.

The paper's design exists to *measure* — "simulations to measure the
storage, processing, and communication patterns in typical FEM-2
applications".  This package is the cross-layer half of that program:
one :class:`Tracer` threaded through all four virtual machines records
causally linked spans (application job → analyst task scopes → system
messages → hardware cycles), and the exporters turn a run into
machine-readable records (JSON/CSV) or a flame-style text profile.

Layering: ``obs`` sits below every virtual machine — it imports nothing
from the rest of the stack, and the stack reaches it only through the
tracer object a :class:`~repro.hardware.machine.Machine` carries.
Tracing is observational only: cycle counts and results are identical
with tracing on, off (:class:`NullTracer`, the default), or absent.
"""

from .tracer import NULL_TRACER, NullTracer, Span, SpanStats, Tracer
from .export import flame, plain, span_tree, to_csv, to_json, to_record

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanStats",
    "Tracer",
    "flame",
    "plain",
    "span_tree",
    "to_csv",
    "to_json",
    "to_record",
]
