"""Exporters for traced profiles: JSON, CSV, and a flame-style text tree.

Machine-readable first: :func:`to_record` produces plain dicts of plain
values (numpy scalars and arrays are converted) so every profile can be
dumped with :mod:`json` and diffed across runs.  :func:`flame` renders
the span tree as fixed-width text in the idiom of the workstation's
table displays.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Optional

from .tracer import Span, Tracer


def plain(value: Any) -> Any:
    """Coerce *value* to JSON-serializable plain Python.

    Handles numpy scalars/arrays without importing numpy (duck-typed via
    ``item()``/``tolist()``); anything else unrecognized becomes ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [plain(v) for v in value]
    if hasattr(value, "tolist"):  # numpy array
        return plain(value.tolist())
    if hasattr(value, "item"):  # numpy scalar
        return plain(value.item())
    return str(value)


def to_record(tracer: Tracer) -> Dict[str, Any]:
    """The whole profile as one plain dict: spans + per-kind aggregates."""
    return {
        "spans": [plain(s.to_record()) for s in tracer.spans()],
        "kinds": plain(tracer.kind_summary()),
        "recorded": tracer.recorded,
        "dropped": tracer.dropped,
    }


def to_json(tracer: Tracer, indent: Optional[int] = None) -> str:
    return json.dumps(to_record(tracer), indent=indent, sort_keys=False)


def to_csv(tracer: Tracer) -> str:
    """Flat span list as CSV: one row per span, attrs as a JSON cell."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["sid", "parent", "kind", "label", "t0", "t1", "cycles", "attrs"])
    for s in tracer.spans():
        writer.writerow(
            [
                s.sid,
                "" if s.parent_sid is None else s.parent_sid,
                s.kind,
                s.label,
                s.t0,
                "" if s.t1 is None else s.t1,
                s.cycles,
                json.dumps(plain(s.attrs), sort_keys=True),
            ]
        )
    return buf.getvalue()


def span_tree(tracer: Tracer) -> List[Dict[str, Any]]:
    """Nested profile: each node is a span record with a ``children`` list."""
    children: Dict[Optional[int], List[Span]] = {}
    for s in tracer.spans():
        children.setdefault(s.parent_sid, []).append(s)
    present = {s.sid for s in tracer.spans()}

    def build(span: Span) -> Dict[str, Any]:
        node = plain(span.to_record())
        node["children"] = [build(c) for c in children.get(span.sid, [])]
        return node

    return [build(s) for s in tracer.spans() if s.parent_sid not in present]


def flame(tracer: Tracer, max_children: int = 12, max_depth: int = 8) -> str:
    """Flame-style text summary of the span tree.

    Siblings of one (kind, label) are merged into a single line with a
    replication count; lines report cycles so "where did the cycles go"
    reads top-down, one indent level per causal hop.
    """
    by_parent: Dict[Optional[int], List[Span]] = {}
    for s in tracer.spans():
        by_parent.setdefault(s.parent_sid, []).append(s)
    present = {s.sid for s in tracer.spans()}
    lines: List[str] = []

    def emit(spans: List[Span], depth: int) -> None:
        if depth > max_depth or not spans:
            return
        groups: Dict[tuple, List[Span]] = {}
        for s in spans:
            groups.setdefault((s.kind, s.label), []).append(s)
        ordered = sorted(
            groups.items(), key=lambda kv: -sum(g.cycles for g in kv[1])
        )
        for i, ((kind, label), group) in enumerate(ordered):
            if i >= max_children:
                rest = sum(len(g) for _, g in ordered[i:])
                lines.append(f"{'  ' * depth}... {rest} more span(s)")
                break
            cyc = sum(g.cycles for g in group)
            mult = f" x{len(group)}" if len(group) > 1 else ""
            lines.append(
                f"{'  ' * depth}{kind}:{label}{mult}  [{cyc:,} cycles]"
            )
            kids: List[Span] = []
            for g in group:
                kids.extend(by_parent.get(g.sid, []))
            emit(kids, depth + 1)

    roots = [s for s in tracer.spans() if s.parent_sid not in present]
    lines.append(f"== span profile: {tracer.recorded} span(s), "
                 f"{len(tracer.stats())} kind(s) ==")
    emit(roots, 0)
    agg = tracer.kind_summary()
    if agg:
        width = max(len(k) for k in agg)
        lines.append("-- per-kind aggregate --")
        for kind, s in agg.items():
            lines.append(
                f"{kind:<{width}}  n={s['count']:>8,}  "
                f"cycles={s['cycles']:>14,}  mean={s['mean']:>12,.1f}"
            )
    return "\n".join(lines)
