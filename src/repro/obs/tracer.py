"""Span-based tracing over the simulated cycle clock.

A :class:`Tracer` records **spans** — intervals of simulated time with a
kind, a label, key/value attributes, and an optional parent span — as a
flat event list plus an O(1)-memory aggregate per span kind.  Every
layer of the FEM-2 stack opens spans on the one tracer a machine
carries, so a single solve yields a causally linked profile:

    appvm.job  →  sysvm.task  →  sysvm.msg.*  →  cycles

Timestamps are *simulated* cycles supplied by the caller (the tracer
owns no clock), so tracing is purely observational: it never schedules
events and never charges cycles, and simulation results are identical
with tracing on, off, or absent.

:class:`NullTracer` is the default everywhere — a no-op with
``enabled = False`` so hot paths can guard with one attribute check and
pay nothing when observability is off.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Union


class Span:
    """One traced interval: ``[t0, t1]`` in simulated cycles.

    ``t1`` is ``None`` while the span is open.  ``parent_sid`` links the
    causal tree; attribute dicts carry layer-specific detail (task ids,
    clusters, message sizes).
    """

    __slots__ = ("sid", "parent_sid", "kind", "label", "t0", "t1", "attrs")

    def __init__(
        self,
        sid: int,
        kind: str,
        label: str,
        t0: int,
        parent_sid: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sid = sid
        self.parent_sid = parent_sid
        self.kind = kind
        self.label = label
        self.t0 = t0
        self.t1: Optional[int] = None
        self.attrs = attrs or {}

    @property
    def cycles(self) -> int:
        """Elapsed simulated cycles (0 while open or for point spans)."""
        return 0 if self.t1 is None else self.t1 - self.t0

    @property
    def open(self) -> bool:
        return self.t1 is None

    def to_record(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "parent": self.parent_sid,
            "kind": self.kind,
            "label": self.label,
            "t0": self.t0,
            "t1": self.t1,
            "cycles": self.cycles,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.kind}:{self.label} t=[{self.t0},{self.t1}])"


class SpanStats:
    """O(1)-memory aggregate of every span of one kind."""

    __slots__ = ("count", "cycles", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.cycles = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, cycles: int) -> None:
        self.count += 1
        self.cycles += cycles
        if self.min is None or cycles < self.min:
            self.min = cycles
        if self.max is None or cycles > self.max:
            self.max = cycles

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "cycles": self.cycles,
            "min": self.min or 0,
            "max": self.max or 0,
            "mean": self.cycles / self.count if self.count else 0.0,
        }


ParentLike = Union["Span", int, None]


def _parent_sid(parent: ParentLike) -> Optional[int]:
    if parent is None:
        return None
    return parent.sid if isinstance(parent, Span) else int(parent)


class Tracer:
    """Records spans into a bounded flat list + exact per-kind aggregates.

    ``capacity`` bounds the retained span list for long simulations
    (further spans are aggregated but not listed; ``dropped`` counts
    them).  Aggregates are always exact regardless of drops.

    ``sample_every=N`` keeps every Nth record attempt and skips the rest
    entirely — no Span allocation, no list append, no aggregate update —
    so tracing overhead is pay-for-what-you-record on hot runs.  Skipped
    attempts are counted in :attr:`sampled_out`; sampling is a
    deterministic counter (not random), so a given run always keeps the
    same spans.  With sampling active, aggregates describe the kept
    subset only; run with the default ``sample_every=1`` when exact
    profiles (e.g. golden traces) are needed.  Sampling never affects
    simulation results — the tracer stays purely observational.
    """

    enabled = True

    def __init__(self, capacity: int = 250_000, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.capacity = capacity
        self.sample_every = sample_every
        self._spans: List[Span] = []
        self._stats: Dict[str, SpanStats] = {}
        self._sid = itertools.count(1)
        self.dropped = 0
        self.recorded = 0
        self.sampled_out = 0
        self._tick = 0

    def _take(self) -> bool:
        """Deterministic 1-in-N sampling decision for one record attempt."""
        every = self.sample_every
        if every == 1:
            return True
        self._tick += 1
        if self._tick >= every:
            self._tick = 0
            return True
        self.sampled_out += 1
        return False

    # -- recording ---------------------------------------------------------

    def begin(
        self,
        kind: str,
        label: str,
        now: int,
        parent: ParentLike = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at simulated time *now*; returns it for :meth:`end`.

        Returns ``None`` when sampled out — :meth:`end` accepts None, so
        callers need no extra guard."""
        if not self._take():
            return None
        span = Span(next(self._sid), kind, label, int(now), _parent_sid(parent), attrs)
        self._keep(span)
        return span

    def end(self, span: Optional[Span], now: int, **attrs: Any) -> Optional[Span]:
        """Close *span* at *now*, folding it into its kind's aggregate."""
        if span is None:
            return None
        span.t1 = int(now)
        if attrs:
            span.attrs.update(attrs)
        self._observe(span.kind, span.cycles)
        return span

    def point(
        self,
        kind: str,
        label: str,
        now: int,
        parent: ParentLike = None,
        aggregate_only: bool = False,
        **attrs: Any,
    ) -> Optional[Span]:
        """A zero-duration span (an instant event).

        ``aggregate_only=True`` skips the flat list entirely — used for
        per-event hardware counts that would flood it.
        """
        if not self._take():
            return None
        self._observe(kind, 0)
        if aggregate_only:
            return None
        span = Span(next(self._sid), kind, label, int(now), _parent_sid(parent), attrs)
        span.t1 = span.t0
        self._keep(span)
        return span

    def _keep(self, span: Span) -> None:
        self.recorded += 1
        if len(self._spans) < self.capacity:
            self._spans.append(span)
        else:
            self.dropped += 1

    def _observe(self, kind: str, cycles: int) -> None:
        stats = self._stats.get(kind)
        if stats is None:
            stats = self._stats[kind] = SpanStats()
        stats.observe(cycles)

    # -- inspection --------------------------------------------------------

    def spans(self, kind: Optional[str] = None) -> List[Span]:
        if kind is None:
            return list(self._spans)
        return [s for s in self._spans if s.kind == kind]

    def stats(self) -> Dict[str, SpanStats]:
        return dict(self._stats)

    def kind_summary(self) -> Dict[str, Dict[str, float]]:
        """``{kind: {count, cycles, min, max, mean}}`` — exact, O(kinds)."""
        return {k: s.summary() for k, s in sorted(self._stats.items())}

    def children_of(self, sid: Optional[int]) -> List[Span]:
        return [s for s in self._spans if s.parent_sid == sid]

    def roots(self) -> List[Span]:
        """Spans whose parent is absent from the retained list."""
        present = {s.sid for s in self._spans}
        return [s for s in self._spans if s.parent_sid not in present]

    def clear(self) -> None:
        self._spans.clear()
        self._stats.clear()
        self.dropped = 0
        self.recorded = 0
        self.sampled_out = 0
        self._tick = 0

    def __len__(self) -> int:
        return len(self._spans)


class NullTracer:
    """The default tracer: does nothing, costs one attribute check.

    Every recording method accepts the full :class:`Tracer` signature
    and returns ``None``, so instrumented code may call it blindly; hot
    paths should instead guard on :attr:`enabled`.
    """

    enabled = False
    capacity = 0
    dropped = 0
    recorded = 0
    sample_every = 1
    sampled_out = 0

    def begin(self, kind, label, now, parent=None, **attrs):  # noqa: D102
        return None

    def end(self, span, now, **attrs):  # noqa: D102
        return None

    def point(self, kind, label, now, parent=None, aggregate_only=False, **attrs):
        return None

    def spans(self, kind=None):
        return []

    def stats(self):
        return {}

    def kind_summary(self):
        return {}

    def children_of(self, sid):
        return []

    def roots(self):
        return []

    def clear(self):
        pass

    def __len__(self) -> int:
        return 0


#: shared no-op instance for callers that want a non-None default
NULL_TRACER = NullTracer()
