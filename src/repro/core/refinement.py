"""Refinement checking: each layer implemented by the one below.

"The ultimate result is to be a detailed design of the hardware and
software, completely specified at each level in terms of its function
and its implementation on the next lower level of virtual machine."

The checker verifies that refinement relation: every item of a layer
must name at least one item in the next lower layer that implements it
(the bottom layer is exempt — it is implemented by physics), all such
references must resolve, and lower-layer items that nothing above uses
are flagged as orphans.  Artifact links are verified by importing them,
which ties the paper design to this repository's executable system.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import RefinementError
from .layers import LayerStack
from .vm_spec import VMSpec


@dataclass
class RefinementReport:
    """Outcome of checking one stack."""

    dangling: List[Tuple[str, str, str]] = field(default_factory=list)   # (layer, item, missing ref)
    uncovered: List[Tuple[str, str]] = field(default_factory=list)        # (layer, item) with no refs
    orphans: List[Tuple[str, str]] = field(default_factory=list)          # (layer, item) unused below
    missing_artifacts: List[Tuple[str, str, str]] = field(default_factory=list)
    items_checked: int = 0

    @property
    def ok(self) -> bool:
        return not (self.dangling or self.uncovered or self.missing_artifacts)

    def coverage(self) -> float:
        """Fraction of non-bottom items with resolving implementations."""
        bad = len(self.uncovered) + len({(l, i) for l, i, _ in self.dangling})
        if self.items_checked == 0:
            return 1.0
        return 1.0 - bad / self.items_checked

    def summary(self) -> str:
        lines = [
            f"refinement: {self.items_checked} items checked, "
            f"coverage {self.coverage():.0%}",
        ]
        for layer, item in self.uncovered:
            lines.append(f"  UNCOVERED  {layer}.{item} has no implementation below")
        for layer, item, ref in self.dangling:
            lines.append(f"  DANGLING   {layer}.{item} -> {ref!r} does not exist below")
        for layer, item, art in self.missing_artifacts:
            lines.append(f"  NO ARTIFACT {layer}.{item} -> {art!r} not importable")
        for layer, item in self.orphans:
            lines.append(f"  orphan     {layer}.{item} (unused by the layer above)")
        return "\n".join(lines)


def resolve_artifact(path: str) -> bool:
    """True if a dotted path ``pkg.mod.attr`` imports and resolves."""
    parts = path.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_refinement(stack: LayerStack, check_artifacts: bool = True) -> RefinementReport:
    """Verify the implementation relation across all adjacent layers."""
    report = RefinementReport()
    for spec in stack.layers_top_down():
        lower = stack.below(spec)
        for item in spec.items():
            if check_artifacts and item.artifact is not None:
                if not resolve_artifact(item.artifact):
                    report.missing_artifacts.append((spec.name, item.name, item.artifact))
            if lower is None:
                continue  # the hardware layer rests on physics
            report.items_checked += 1
            if not item.implemented_by:
                report.uncovered.append((spec.name, item.name))
                continue
            for ref in item.implemented_by:
                if ref not in lower:
                    report.dangling.append((spec.name, item.name, ref))
    # orphans: lower-layer items no upper-layer item references
    for spec in stack.layers_top_down():
        lower = stack.below(spec)
        if lower is None:
            continue
        used = {ref for item in spec.items() for ref in item.implemented_by}
        for item in lower.items():
            if item.name not in used:
                report.orphans.append((lower.name, item.name))
    return report


def require_refined(stack: LayerStack) -> RefinementReport:
    """Check and raise :class:`RefinementError` on any hard failure."""
    report = check_refinement(stack)
    if not report.ok:
        raise RefinementError(report.summary())
    return report
