"""The FEM-2 design method — the paper's primary contribution.

Virtual-machine layer specifications (five components per layer),
top-down requirement derivation, refinement checking between adjacent
layers, the iterative design process, and the actual FEM-2 four-layer
specification (:func:`fem2_stack`) wired to this repository's
executable artifacts and H-graph formal models.
"""

from .state import Snapshottable, is_snapshottable
from .vm_spec import ComponentKind, SpecItem, VMSpec
from .layers import LayerStack
from .refinement import (
    RefinementReport,
    check_refinement,
    require_refined,
    resolve_artifact,
)
from .requirements import (
    PAPER_HARDWARE_REQUIREMENTS,
    Requirement,
    RequirementTracker,
    derive_requirements,
)
from .process import (
    DesignProcess,
    IterationRecord,
    OrderStudyResult,
    classify_requirements,
    design_order_study,
)
from .specs import fem2_grammars, fem2_stack, fem2_transforms
from .report import render_stack, render_traceability

__all__ = [
    "Snapshottable",
    "is_snapshottable",
    "ComponentKind",
    "SpecItem",
    "VMSpec",
    "LayerStack",
    "RefinementReport",
    "check_refinement",
    "require_refined",
    "resolve_artifact",
    "PAPER_HARDWARE_REQUIREMENTS",
    "Requirement",
    "RequirementTracker",
    "derive_requirements",
    "DesignProcess",
    "IterationRecord",
    "OrderStudyResult",
    "classify_requirements",
    "design_order_study",
    "fem2_grammars",
    "fem2_stack",
    "fem2_transforms",
    "render_stack",
    "render_traceability",
]
