"""The FEM-2 specification: the paper's four layers, made checkable.

This module transcribes the paper's component lists into a
:class:`~repro.core.layers.LayerStack` whose items

* refine into named items of the next layer down (checked by
  :mod:`repro.core.refinement`),
* link to the executable artifacts of this repository (checked by
  import), and
* carry H-graph grammars as formal models where the paper's method
  calls for them.

``fem2_stack()`` is the deliverable the paper's status section says was
"nearing completion"; the test suite holds it to full refinement
coverage.
"""

from __future__ import annotations

from ..hgraph import (
    Alt,
    Any,
    AtomKind,
    Const,
    Grammar,
    HGraph,
    Interpreter,
    Ref,
    Struct,
    Sub,
    Symbol,
    Transform,
)
from .layers import LayerStack
from .vm_spec import VMSpec


# -- formal models (H-graph grammars) -----------------------------------------

def fem2_grammars() -> dict:
    """The formal data-object models referenced by the layer specs."""
    load_set = Grammar("load_set")
    load_set.define(
        "load_set",
        Alt(
            Struct(arcs={"head": Ref("load"), "tail": Ref("load_set")}),
            Struct(arcs={}),
        ),
    )
    load_set.define(
        "load",
        Sub(Struct(arcs={
            "node": AtomKind("int"),
            "comp": AtomKind("int"),
            "value": AtomKind("number"),
        })),
    )

    structure_model = Grammar("structure_model")
    structure_model.define(
        "structure_model",
        Struct(arcs={
            "name": AtomKind("str"),
            "grid": Sub(Ref("grid")),
            "loads": Sub(Ref("load_sets")),
        }),
    )
    structure_model.define(
        "grid",
        Struct(arcs={"nodes": AtomKind("int"), "elements": AtomKind("int")}),
    )
    structure_model.define(
        "load_sets",
        Alt(
            Struct(arcs={"head": AtomKind("str"), "tail": Ref("load_sets")}),
            Struct(arcs={}),
        ),
    )

    window_descriptor = Grammar("window_descriptor")
    window_descriptor.define(
        "window_descriptor",
        Struct(arcs={
            "array": AtomKind("int"),
            "r0": AtomKind("int"),
            "r1": AtomKind("int"),
            "c0": AtomKind("int"),
            "c1": AtomKind("int"),
        }),
    )

    message = Grammar("message")
    message.define(
        "message",
        Struct(
            arcs={
                "kind": Ref("kind"),
                "src": AtomKind("int"),
                "dst": AtomKind("int"),
                "size": AtomKind("int"),
            },
            closed=False,
        ),
    )
    message.define(
        "kind",
        Alt(*[
            Const(Symbol(s))
            for s in (
                "initiate_task", "pause_notify", "resume_task",
                "terminate_notify", "remote_call", "remote_return", "load_code",
            )
        ]),
    )

    task_state = Grammar("task_state")
    task_state.define(
        "task_state",
        Alt(*[
            Const(Symbol(s))
            for s in ("ready", "running", "blocked", "paused", "done", "failed")
        ]),
    )

    return {
        g.name: g
        for g in (load_set, structure_model, window_descriptor, message, task_state)
    }


def fem2_transforms() -> Interpreter:
    """Example H-graph transforms over the formal models: the operations
    side of the specification, executable and condition-checked."""
    grammars = fem2_grammars()
    load_set_g = grammars["load_set"]

    def new_load_set(ctx, hg):
        """Create an empty load-set H-graph."""
        return hg.new_graph(hg.new_node(None, label="load_set"))

    def add_load(ctx, hg, ls, node, comp, value):
        """Prepend one load record to a load-set H-graph."""
        load = hg.build_record({"node": node, "comp": comp, "value": float(value)})
        cell = hg.new_node(None, label="cons")
        old_root = ls.root
        g = ls
        g.add_member(cell)
        g.add_arc(cell, "head", hg.subgraph_node(load))
        if g.arcs_from(old_root):
            g.add_arc(cell, "tail", old_root)
        else:
            g.add_arc(cell, "tail", old_root)
        g.root = cell
        return g

    def total_load(ctx, hg, ls):
        """Sum of load magnitudes in a load-set H-graph."""
        total = 0.0
        node = ls.root
        while True:
            arcs = ls.arcs_from(node)
            if "head" not in arcs:
                return total
            record = arcs["head"].value
            total += abs(record.follow(record.root, "value").value)
            node = arcs["tail"]

    interp = Interpreter(verify=True)
    interp.register(Transform("new_load_set", new_load_set).ensure(load_set_g))
    interp.register(
        Transform("add_load", add_load).require(0, load_set_g).ensure(load_set_g)
    )
    interp.register(Transform("total_load", total_load).require(0, load_set_g))
    return interp


# -- the four layers -------------------------------------------------------------

def _layer1() -> VMSpec:
    vm = VMSpec("application_user", 1, audience="structural engineer")
    vm.data_object(
        "structure_model", "structure/substructure model",
        implemented_by=("windows", "tasks"), formal="structure_model",
        artifact="repro.appvm.model.StructureModel",
    )
    vm.data_object(
        "grid_description", "grid description",
        implemented_by=("windows",), artifact="repro.fem.mesh.Mesh",
    )
    vm.data_object(
        "node_element_description", "node/element description",
        implemented_by=("windows",), artifact="repro.fem.mesh.Mesh.element_coords",
    )
    vm.data_object(
        "load_set", "load set", implemented_by=("windows",),
        formal="load_set", artifact="repro.fem.loads.LoadSet",
    )
    vm.data_object(
        "displacements", "displacements of nodes",
        implemented_by=("windows",), artifact="repro.appvm.model.AnalysisResult",
    )
    vm.data_object(
        "stresses", "stresses on elements",
        implemented_by=("windows",), artifact="repro.fem.stress.recover_stresses",
    )
    vm.operation(
        "define_structure_model", "define structure model",
        implemented_by=("tasks",), artifact="repro.appvm.session.WorkstationSession.define_structure",
    )
    vm.operation(
        "generate_grid", "generate grid", implemented_by=("tasks",),
        artifact="repro.fem.mesh.rect_grid",
    )
    vm.operation(
        "define_elements", "define elements", implemented_by=("tasks",),
        artifact="repro.fem.mesh.Mesh.add_elements",
    )
    vm.operation(
        "solve_model", "solve structure model/load set for displacements",
        implemented_by=("tasks", "linalg_operations", "forall"),
        artifact="repro.fem.parallel.parallel_cg_solve",
    )
    vm.operation(
        "calculate_stresses", "calculate stresses", implemented_by=("tasks",),
        artifact="repro.fem.stress.recover_stresses",
    )
    vm.operation(
        "db_operations", "store model in DB / retrieve",
        implemented_by=("tasks", "window_operations"),
        artifact="repro.appvm.database.ModelDatabase",
    )
    vm.sequence_control(
        "command_interpretation", "direct interpretation of user commands",
        implemented_by=("task_control",),
        artifact="repro.appvm.commands.CommandInterpreter",
    )
    vm.data_control(
        "workspace", "user local data", implemented_by=("single_task_ownership",),
        artifact="repro.appvm.workspace.Workspace",
    )
    vm.data_control(
        "database", "long-term storage; shared data",
        implemented_by=("window_communication",),
        artifact="repro.appvm.database.ModelDatabase",
    )
    vm.storage_management(
        "dynamic_allocation", "dynamic storage allocation for models, results, workspaces",
        implemented_by=("dynamic_data_creation",),
        artifact="repro.appvm.workspace.Workspace.put",
    )
    vm.storage_management(
        "db_workspace_movement", "data movement between data base and workspace",
        implemented_by=("window_operations",),
        artifact="repro.appvm.session.WorkstationSession.retrieve_model",
    )
    return vm


def _layer2() -> VMSpec:
    vm = VMSpec("numerical_analyst", 2, audience="research user / numerical analyst")
    vm.data_object(
        "windows", "windows on arrays: row, column, block descriptors",
        implemented_by=("window_descriptors", "storage_representations"),
        formal="window_descriptor", artifact="repro.langvm.windows.Window",
    )
    vm.operation(
        "tasks", "programmer-defined parallel procedures",
        implemented_by=("activation_records", "code_blocks", "decode_execute_message"),
        artifact="repro.sysvm.effects.Initiate",
    )
    vm.operation(
        "window_operations", "create window, access/assign data visible in a window",
        implemented_by=("format_send_message", "decode_execute_message", "window_descriptors"),
        artifact="repro.langvm.program.TaskContext.read",
    )
    vm.operation(
        "broadcast", "broadcast data to a set of tasks",
        implemented_by=("format_send_message",),
        artifact="repro.sysvm.effects.Broadcast",
    )
    vm.operation(
        "linalg_operations", "inner product, vector operations, etc.",
        implemented_by=("linalg_library",),
        artifact="repro.langvm.linalg.inner",
    )
    vm.sequence_control(
        "forall", "do all iterations in parallel if possible",
        implemented_by=("messages", "decode_execute_message"),
        artifact="repro.langvm.parallel.forall",
    )
    vm.sequence_control(
        "pardo", "do all statements in parallel",
        implemented_by=("messages", "decode_execute_message"),
        artifact="repro.langvm.parallel.pardo",
    )
    vm.sequence_control(
        "task_control", "initiate, pause, resume, terminate",
        implemented_by=("messages", "decode_execute_message"),
        formal="task_state", artifact="repro.sysvm.scheduler.TaskState",
    )
    vm.sequence_control(
        "remote_procedure_call", "location determined by window data location",
        implemented_by=("messages", "format_send_message"),
        artifact="repro.sysvm.effects.RemoteCall",
    )
    vm.data_control(
        "single_task_ownership", "all data owned by a single task",
        implemented_by=("storage_representations",),
        artifact="repro.langvm.ownership.check_owner",
    )
    vm.data_control(
        "window_access", "data accessible non-locally only via windows",
        implemented_by=("window_descriptors",),
        artifact="repro.langvm.ownership.check_owner",
    )
    vm.data_control(
        "window_communication", "tasks may communicate through windows",
        implemented_by=("window_descriptors", "messages"),
        artifact="repro.langvm.windows.Window.write_to",
    )
    vm.storage_management(
        "dynamic_data_creation", "dynamic creation of data objects by a task",
        implemented_by=("general_heap",),
        artifact="repro.sysvm.effects.CreateArray",
    )
    vm.storage_management(
        "data_lifetime", "data lifetime = lifetime of owner task",
        implemented_by=("general_heap",),
        artifact="repro.sysvm.storage.DataStore.drop_owned_by",
    )
    vm.storage_management(
        "task_replication", "dynamic creation of multiple task replications",
        implemented_by=("activation_records", "messages"),
        artifact="repro.sysvm.effects.Initiate",
    )
    vm.storage_management(
        "pause_retention", "local data of a task retained over pause/resume",
        implemented_by=("activation_records",),
        artifact="repro.sysvm.activation.ActivationRecord",
    )
    return vm


def _layer3() -> VMSpec:
    vm = VMSpec("system_programmer", 3, audience="operating-system implementor")
    vm.data_object(
        "code_blocks", "code blocks / constants blocks",
        implemented_by=("cluster_memory",),
        artifact="repro.sysvm.code.CodeBlock",
    )
    vm.data_object(
        "activation_records", "task/procedure activation records (local data)",
        implemented_by=("cluster_memory",),
        artifact="repro.sysvm.activation.ActivationRecord",
    )
    vm.data_object(
        "window_descriptors", "window descriptors",
        implemented_by=("cluster_memory",),
        artifact="repro.sysvm.storage.WINDOW_DESCRIPTOR_WORDS",
    )
    vm.data_object(
        "storage_representations", "storage representations for scalars, arrays, etc.",
        implemented_by=("cluster_memory",),
        artifact="repro.sysvm.storage.words_of",
    )
    vm.data_object(
        "messages", "the seven task/OS message types",
        implemented_by=("message_delivery", "input_queues"),
        formal="message", artifact="repro.sysvm.messages.MsgKind",
    )
    vm.operation(
        "sequential_operations", "arithmetic, procedure call, etc.",
        implemented_by=("pe_execution",),
        artifact="repro.sysvm.effects.Compute",
    )
    vm.operation(
        "linalg_library", "library routines for linear algebra operations",
        implemented_by=("pe_execution",),
        artifact="repro.langvm.linalg.ensure_registered",
    )
    vm.operation(
        "format_send_message", "format and send message (one of the 7 types)",
        implemented_by=("message_delivery", "pe_execution"),
        artifact="repro.sysvm.codec.encode",
    )
    vm.operation(
        "decode_execute_message",
        "decode and execute message (find code, allocate activation record, "
        "copy parameters, enter ready queue)",
        implemented_by=("kernel_dispatch", "input_queues"),
        artifact="repro.sysvm.runtime.Runtime.handle_message",
    )
    vm.sequence_control(
        "sequential_control", "usual sequential language control structures",
        implemented_by=("pe_execution",),
        artifact="repro.sysvm.runtime.Runtime._step",
    )
    vm.sequence_control(
        "ready_queue_scheduling", "enter task in ready queue; assign available PEs",
        implemented_by=("kernel_dispatch",),
        artifact="repro.sysvm.scheduler.ReadyQueue",
    )
    vm.data_control(
        "sequential_data_control", "usual sequential language structures",
        implemented_by=("shared_cluster_memory",),
        artifact="repro.sysvm.activation.ActivationRecord.get_local",
    )
    vm.storage_management(
        "general_heap", "general heap with variable size blocks",
        implemented_by=("memory_capacity",),
        artifact="repro.sysvm.heap.Heap",
    )
    return vm


def _layer4() -> VMSpec:
    vm = VMSpec("hardware", 4, audience="hardware architect")
    vm.data_object(
        "cluster_memory", "shared memory per cluster",
        artifact="repro.hardware.memory.SharedMemory",
    )
    vm.data_object(
        "input_queues", "per-cluster message input queues",
        artifact="repro.hardware.cluster.Cluster.enqueue",
    )
    vm.operation(
        "pe_execution", "processing-element compute bursts",
        artifact="repro.hardware.pe.ProcessingElement.execute",
    )
    vm.operation(
        "message_delivery", "network transfer between clusters",
        artifact="repro.hardware.machine.Machine.deliver",
    )
    vm.sequence_control(
        "event_clock", "deterministic discrete-event ordering in cycles",
        artifact="repro.hardware.events.EventEngine",
    )
    vm.sequence_control(
        "kernel_dispatch", "kernel PE fields messages, assigns any available PE",
        artifact="repro.sysvm.kernel.Kernel",
    )
    vm.data_control(
        "shared_cluster_memory", "PEs of a cluster share one memory",
        artifact="repro.hardware.cluster.Cluster",
    )
    vm.storage_management(
        "memory_capacity", "capacity-accounted physical allocation",
        artifact="repro.hardware.memory.SharedMemory.reserve",
    )
    vm.storage_management(
        "reconfiguration", "isolate faulty hardware components",
        artifact="repro.hardware.faults.FaultInjector",
    )
    return vm


def fem2_stack() -> LayerStack:
    """The complete, checkable FEM-2 design."""
    stack = LayerStack("fem2")
    for grammar in fem2_grammars().values():
        stack.add_grammar(grammar)
    stack.add_layer(_layer1())
    stack.add_layer(_layer2())
    stack.add_layer(_layer3())
    stack.add_layer(_layer4())
    stack.validate()
    return stack
