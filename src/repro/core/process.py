"""The design process itself: iteration and design-order studies.

Two instruments:

* :class:`DesignProcess` — runs the paper's iterate-until-it-firms-up
  loop over a stack: every iteration applies an edit, revalidates,
  re-checks refinement, and records the defect counts, so the
  convergence of a design ("several iterations through the four levels
  are made") is a measurable curve.

* :func:`design_order_study` — quantifies the paper's central claim.
  When layers are *frozen* in some order, a cross-layer requirement is
  **late** if the layer it constrains was frozen before the layer that
  generates it (the constraint arrives after the hardware is fixed —
  the "distortion" the introduction describes).  Top-down freezing
  (1, 2, 3, 4) makes every requirement early; bottom-up freezing
  (4, 3, 2, 1) makes every cross-layer requirement late.  The study
  reports late-requirement counts for both orders over a real stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import DesignError
from .layers import LayerStack
from .refinement import RefinementReport, check_refinement
from .requirements import Requirement, derive_requirements


@dataclass
class IterationRecord:
    """Metrics of one design iteration."""

    index: int
    description: str
    total_items: int
    defects: int            # dangling + uncovered + missing artifacts
    coverage: float
    valid: bool


class DesignProcess:
    """Iterative refinement of a layer stack with defect tracking."""

    def __init__(self, stack: LayerStack, check_artifacts: bool = False) -> None:
        self.stack = stack
        self.check_artifacts = check_artifacts
        self.history: List[IterationRecord] = []

    def _measure(self, description: str) -> IterationRecord:
        try:
            self.stack.validate()
            valid = True
        except DesignError:
            valid = False
        report = check_refinement(self.stack, check_artifacts=self.check_artifacts)
        defects = (
            len(report.dangling) + len(report.uncovered) + len(report.missing_artifacts)
        )
        rec = IterationRecord(
            index=len(self.history),
            description=description,
            total_items=self.stack.total_items(),
            defects=defects,
            coverage=report.coverage(),
            valid=valid,
        )
        self.history.append(rec)
        return rec

    def baseline(self) -> IterationRecord:
        """Record the starting state (iteration 0)."""
        return self._measure("baseline")

    def iterate(self, description: str, edit: Callable[[LayerStack], None]) -> IterationRecord:
        """One design iteration: apply an edit, re-measure."""
        edit(self.stack)
        return self._measure(description)

    def converged(self) -> bool:
        """The design has "firmed up": valid, zero defects."""
        return bool(self.history) and self.history[-1].defects == 0 and self.history[-1].valid

    def defect_curve(self) -> List[int]:
        return [r.defects for r in self.history]


@dataclass
class OrderStudyResult:
    order_name: str
    freeze_order: Tuple[int, ...]
    late: List[Requirement]
    early: List[Requirement]

    @property
    def late_count(self) -> int:
        return len(self.late)

    @property
    def late_fraction(self) -> float:
        total = len(self.late) + len(self.early)
        return len(self.late) / total if total else 0.0


def classify_requirements(
    requirements: Sequence[Requirement], freeze_order: Sequence[int]
) -> Tuple[List[Requirement], List[Requirement]]:
    """Split requirements into (late, early) under a freeze order.

    A requirement from level A on level B is *late* when B freezes
    before A — B's design could not have taken it into account.
    """
    position = {level: i for i, level in enumerate(freeze_order)}
    late, early = [], []
    for r in requirements:
        if r.from_level not in position or r.on_level not in position:
            raise DesignError(f"requirement {r.rid} references unfrozen level")
        (late if position[r.on_level] < position[r.from_level] else early).append(r)
    return late, early


def design_order_study(stack: LayerStack) -> Dict[str, OrderStudyResult]:
    """Compare top-down and bottom-up freeze orders on a real stack."""
    reqs = derive_requirements(stack)
    levels = stack.levels()
    orders = {
        "top_down": tuple(levels),
        "bottom_up": tuple(reversed(levels)),
    }
    out = {}
    for name, order in orders.items():
        late, early = classify_requirements(reqs, order)
        out[name] = OrderStudyResult(name, order, late, early)
    return out
