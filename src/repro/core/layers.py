"""The layer stack: four virtual machines, top down.

"FEM-2 is considered to be composed of layers of virtual machine.  Each
layer defines the view of the system available to one class of users."
The stack orders layers from level 1 (application user) to level 4
(hardware) and owns the formal models (H-graph grammars) the layers
reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import DesignError
from ..hgraph import Grammar
from .vm_spec import SpecItem, VMSpec


class LayerStack:
    """An ordered set of VM specifications plus their formal models."""

    def __init__(self, name: str = "fem2") -> None:
        self.name = name
        self._layers: Dict[int, VMSpec] = {}
        self.grammars: Dict[str, Grammar] = {}

    def add_layer(self, spec: VMSpec) -> VMSpec:
        if spec.level in self._layers:
            raise DesignError(f"stack already has a level-{spec.level} layer")
        self._layers[spec.level] = spec
        return spec

    def add_grammar(self, grammar: Grammar) -> Grammar:
        grammar.validate()
        if grammar.name in self.grammars:
            raise DesignError(f"duplicate grammar {grammar.name!r}")
        self.grammars[grammar.name] = grammar
        return grammar

    # -- access -----------------------------------------------------------

    def layer(self, level: int) -> VMSpec:
        try:
            return self._layers[level]
        except KeyError:
            raise DesignError(f"stack has no level-{level} layer") from None

    def layers_top_down(self) -> List[VMSpec]:
        return [self._layers[k] for k in sorted(self._layers)]

    def below(self, spec: VMSpec) -> Optional[VMSpec]:
        """The next lower layer (higher level number), or None at bottom."""
        return self._layers.get(spec.level + 1)

    def levels(self) -> List[int]:
        return sorted(self._layers)

    def total_items(self) -> int:
        return sum(len(s) for s in self._layers.values())

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Structural checks: contiguous levels, complete layers, formal
        references resolving to registered grammars."""
        levels = self.levels()
        if not levels:
            raise DesignError("empty layer stack")
        if levels != list(range(levels[0], levels[0] + len(levels))):
            raise DesignError(f"layer levels not contiguous: {levels}")
        for spec in self._layers.values():
            missing = [k for k, ok in spec.completeness().items() if not ok]
            if missing:
                raise DesignError(
                    f"layer {spec.name!r} is missing components: {missing}"
                )
            for item in spec.items():
                if item.formal is not None and item.formal not in self.grammars:
                    raise DesignError(
                        f"layer {spec.name!r} item {item.name!r} references "
                        f"unregistered formal model {item.formal!r}"
                    )
