"""Design-document rendering: the method's paper output."""

from __future__ import annotations

from typing import List

from .layers import LayerStack
from .refinement import check_refinement
from .requirements import derive_requirements
from .vm_spec import ComponentKind


def render_stack(stack: LayerStack) -> str:
    """The layered design as a text document."""
    lines: List[str] = [f"FEM-2 design: {stack.name}", "=" * 40]
    for spec in stack.layers_top_down():
        lines.append(f"\nLevel {spec.level}: {spec.name} ({spec.audience})")
        lines.append("-" * 40)
        for kind in ComponentKind:
            items = spec.items(kind)
            if not items:
                continue
            lines.append(f"  {kind.value}:")
            for item in items:
                impl = f" -> {', '.join(item.implemented_by)}" if item.implemented_by else ""
                formal = f" [formal: {item.formal}]" if item.formal else ""
                lines.append(f"    {item.name}{impl}{formal}")
                if item.description:
                    lines.append(f"      {item.description}")
    lines.append("")
    lines.append(check_refinement(stack, check_artifacts=False).summary())
    return "\n".join(lines)


def render_traceability(stack: LayerStack) -> str:
    """Requirements and where they land, level by level."""
    reqs = derive_requirements(stack)
    lines = [f"{len(reqs)} requirements derived"]
    for level in stack.levels():
        on = [r for r in reqs if r.on_level == level]
        if not on:
            continue
        lines.append(f"\non level {level} ({stack.layer(level).name}): {len(on)}")
        for r in on:
            lines.append(f"  {r.rid}: {r.text}")
    return "\n".join(lines)
