"""Requirement derivation and tracing.

"Each layer of virtual machine is designed first, starting with the top
layer and considering each layer as defining the requirements that must
be satisfied by the design at the level below."

:func:`derive_requirements` mechanizes that sentence: every item of a
layer generates one requirement on the layer below ("provide an
implementation of X"), and the paper's explicit hardware requirements
(six derived, four imposed) are included as level-4 requirements.  The
tracker records which requirements a given design stage satisfies —
the raw material of the top-down-vs-bottom-up study (E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import DesignError
from .layers import LayerStack


@dataclass(frozen=True)
class Requirement:
    """One obligation a layer places on the layer below it."""

    rid: str
    text: str
    from_level: int     # the layer whose design created the requirement
    on_level: int       # the layer that must satisfy it
    source_item: Optional[str] = None


#: The architecture requirements the paper lists explicitly, all of
#: which land on the hardware layer (level 4).
PAPER_HARDWARE_REQUIREMENTS = (
    "large scale dynamic task initiation",
    "remote access to local data (through windows)",
    "large messages (between tasks, and from a task to the operating system)",
    "irregular communication patterns",
    "large storage requirements; dynamic allocation",
    "fast linear algebra operations",
    # imposed independently:
    "use off-the-shelf hardware/software if possible",
    "provide a way to extend the system to larger configurations easily",
    "provide reconfigurability to isolate faulty hardware components",
    "provide multi-user access",
)


def derive_requirements(stack: LayerStack) -> List[Requirement]:
    """All requirements in the stack, top down."""
    reqs: List[Requirement] = []
    for spec in stack.layers_top_down():
        lower = stack.below(spec)
        if lower is None:
            continue
        for item in spec.items():
            reqs.append(
                Requirement(
                    rid=f"L{spec.level}/{item.name}",
                    text=f"implement {item.name!r} ({item.kind.value}) of "
                         f"the {spec.name} layer",
                    from_level=spec.level,
                    on_level=lower.level,
                    source_item=item.name,
                )
            )
    bottom = stack.layers_top_down()[-1]
    for i, text in enumerate(PAPER_HARDWARE_REQUIREMENTS, 1):
        reqs.append(
            Requirement(
                rid=f"HW/{i}",
                text=text,
                from_level=bottom.level - 1,
                on_level=bottom.level,
            )
        )
    return reqs


class RequirementTracker:
    """Which requirements are known/satisfied at each design stage."""

    def __init__(self, requirements: List[Requirement]) -> None:
        ids = [r.rid for r in requirements]
        if len(set(ids)) != len(ids):
            raise DesignError("duplicate requirement ids")
        self.requirements = {r.rid: r for r in requirements}
        self.satisfied: Dict[str, str] = {}  # rid -> how

    def satisfy(self, rid: str, how: str) -> None:
        if rid not in self.requirements:
            raise DesignError(f"unknown requirement {rid!r}")
        self.satisfied[rid] = how

    def unsatisfied(self) -> List[Requirement]:
        return [r for rid, r in self.requirements.items() if rid not in self.satisfied]

    def on_level(self, level: int) -> List[Requirement]:
        return [r for r in self.requirements.values() if r.on_level == level]

    def satisfaction_rate(self) -> float:
        if not self.requirements:
            return 1.0
        return len(self.satisfied) / len(self.requirements)
