"""Virtual-machine specifications: the unit of the FEM-2 design method.

"A virtual machine is composed of (1) various types of data objects,
(2) various operations on those data objects, (3) various sequence
control mechanisms ..., (4) various data control mechanisms ..., and
(5) storage management mechanisms ..."

A :class:`VMSpec` is one layer's specification: a set of
:class:`SpecItem` s, each in one of the five component kinds, each
optionally carrying

* ``implemented_by`` — names of items in the next lower layer that
  realize it (the refinement relation the method checks), and
* ``artifact`` — the dotted Python path of the executable artifact in
  this repository that embodies it, and
* ``formal`` — an H-graph grammar or transform name registered as the
  item's formal model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import DesignError


class ComponentKind(enum.Enum):
    """The five components of a virtual machine."""

    DATA_OBJECT = "data_object"
    OPERATION = "operation"
    SEQUENCE_CONTROL = "sequence_control"
    DATA_CONTROL = "data_control"
    STORAGE_MANAGEMENT = "storage_management"


@dataclass
class SpecItem:
    """One named element of a virtual-machine specification."""

    name: str
    kind: ComponentKind
    description: str = ""
    implemented_by: Tuple[str, ...] = ()
    artifact: Optional[str] = None
    formal: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise DesignError("spec items need a name")
        if not isinstance(self.kind, ComponentKind):
            raise DesignError(f"item {self.name!r}: kind must be a ComponentKind")
        self.implemented_by = tuple(self.implemented_by)


class VMSpec:
    """One layer of the FEM-2 design: a named set of spec items."""

    def __init__(self, name: str, level: int, audience: str = "") -> None:
        if level < 1:
            raise DesignError(f"layer level must be >= 1, got {level}")
        self.name = name
        self.level = level  # 1 = application user ... 4 = hardware
        self.audience = audience
        self._items: Dict[str, SpecItem] = {}

    # -- construction ------------------------------------------------------

    def add(self, item: SpecItem) -> SpecItem:
        if item.name in self._items:
            raise DesignError(f"layer {self.name!r}: duplicate item {item.name!r}")
        self._items[item.name] = item
        return item

    def data_object(self, name: str, description: str = "", **kw) -> SpecItem:
        return self.add(SpecItem(name, ComponentKind.DATA_OBJECT, description, **kw))

    def operation(self, name: str, description: str = "", **kw) -> SpecItem:
        return self.add(SpecItem(name, ComponentKind.OPERATION, description, **kw))

    def sequence_control(self, name: str, description: str = "", **kw) -> SpecItem:
        return self.add(SpecItem(name, ComponentKind.SEQUENCE_CONTROL, description, **kw))

    def data_control(self, name: str, description: str = "", **kw) -> SpecItem:
        return self.add(SpecItem(name, ComponentKind.DATA_CONTROL, description, **kw))

    def storage_management(self, name: str, description: str = "", **kw) -> SpecItem:
        return self.add(SpecItem(name, ComponentKind.STORAGE_MANAGEMENT, description, **kw))

    # -- queries ----------------------------------------------------------------

    def items(self, kind: Optional[ComponentKind] = None) -> List[SpecItem]:
        if kind is None:
            return list(self._items.values())
        return [i for i in self._items.values() if i.kind == kind]

    def get(self, name: str) -> SpecItem:
        try:
            return self._items[name]
        except KeyError:
            raise DesignError(f"layer {self.name!r} has no item {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._items)

    def completeness(self) -> Dict[str, bool]:
        """Does the layer cover all five VM components? (The method's
        first sanity check: a layer missing a component is underspecified.)"""
        return {k.value: bool(self.items(k)) for k in ComponentKind}

    def is_complete(self) -> bool:
        return all(self.completeness().values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VMSpec({self.name!r}, level={self.level}, items={len(self)})"
