"""The ``Snapshottable`` protocol: explicit state ownership per layer.

The design method requires each virtual machine layer to *enumerate*
its mutable state rather than scatter it across closures: a component
that owns state implements ``snapshot()`` (return every mutable field
as plain, picklable data) and ``restore(state)`` (install such a state
into a freshly built component).  The whole-machine checkpoint in
:mod:`repro.ckpt` is just the composition of these per-layer pairs.

Conventions (enforced statically by lint rule S1):

* a class defining ``snapshot()`` must define ``restore()``;
* together they must cover every ``__slots__`` / dataclass field of the
  class (fields rebuilt by other machinery are listed in a class-level
  ``_snapshot_exempt`` tuple);
* ``snapshot()`` returns only plain data — dicts, lists, tuples,
  scalars, numpy arrays — never coroutines, PEs, or engine events.
  Live execution points (coroutines, in-flight events) are captured as
  *descriptors* and reconstructed deterministically on restore.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Snapshottable(Protocol):
    """Structural type of every checkpointable component.

    The protocol is purely structural (duck-typed): hardware and VM
    layers implement it without importing this module, preserving the
    layering rules; :mod:`repro.ckpt` and the tests use it to assert
    conformance.
    """

    def snapshot(self) -> Any:
        """Every mutable field of this component, as plain data."""
        ...  # pragma: no cover - protocol

    def restore(self, state: Any) -> None:
        """Install a previously captured state into this component."""
        ...  # pragma: no cover - protocol


def is_snapshottable(obj: Any) -> bool:
    """True when *obj* implements the snapshot/restore pair."""
    return isinstance(obj, Snapshottable)
