"""Checkpoint/restore and deterministic replay across all four VM layers.

Every layer of the FEM-2 stack enumerates its mutable state explicitly
(the :class:`repro.core.Snapshottable` convention); this package adds
the machinery that turns those per-layer snapshots into whole-machine
checkpoints: a versioned blob codec, a clock-neutral periodic
:class:`Checkpointer`, and restore-into-fresh-program recovery that
rebuilds task coroutines by journal replay.
"""

from .checkpoint import Checkpoint, Checkpointer, restore_program
from .codec import (
    MAGIC,
    VERSION,
    content_fingerprint,
    fingerprint,
    from_bytes,
    to_bytes,
)

__all__ = [
    "Checkpoint",
    "Checkpointer",
    "restore_program",
    "MAGIC",
    "VERSION",
    "content_fingerprint",
    "fingerprint",
    "from_bytes",
    "to_bytes",
]
