"""Checkpoint blob codec: a tagged, versioned, compressed pickle.

A checkpoint is the plain-data tree produced by
``Fem2Program.snapshot()``.  Code is never part of a blob — task bodies
and the code registry are re-created by the program factory on the
restore side, which is what models recovering onto *spare hardware*
running the same program image.

Layout: ``b"FEM2CKPT"`` + one version byte + zlib-compressed pickle.
"""

from __future__ import annotations

import hashlib
import pickle
import zlib
from typing import Any

from ..errors import CkptError

MAGIC = b"FEM2CKPT"
VERSION = 1


def fingerprint(blob: bytes) -> str:
    """The sha256 hex digest of a checkpoint blob's exact bytes.

    Blobs produced the same way are byte-deterministic (fixed pickle
    protocol, fixed compression level, no host state in snapshots), so
    campaign reports embed this digest instead of megabytes of blob —
    any worker count must reproduce the same restart blobs bit for bit.
    To compare machine *states* reached along different histories (a
    restored program aliases its objects differently), use
    :func:`content_fingerprint` instead.
    """
    if not isinstance(blob, (bytes, bytearray)) or not blob.startswith(MAGIC):
        raise CkptError("not a FEM-2 checkpoint (bad magic)")
    return hashlib.sha256(bytes(blob)).hexdigest()


def content_fingerprint(state: Any) -> str:
    """A sha256 digest of a snapshot tree's *content*.

    Raw blob bytes encode host object-graph topology as well as state:
    pickle memoizes shared references, and a restored program aliases
    its arrays differently than the original (journal replay feeds
    tasks deep copies), so two machines in identical simulated states
    can still produce different blob bytes.  This digest walks the tree
    instead — mappings hashed key-sorted, sequences in order, every
    leaf pickled independently — so it depends only on the state a
    snapshot describes, never on how the host happened to share the
    objects holding it.  Equal digests mean equal machine states; the
    campaign layer uses this to prove a warm-restarted point finished
    in exactly the state a cold run reaches.
    """
    h = hashlib.sha256()
    _feed_content(state, h)
    return h.hexdigest()


def _feed_content(value: Any, h: "hashlib._Hash") -> None:
    if isinstance(value, dict):
        h.update(b"map%d:" % len(value))
        for key in sorted(value, key=lambda k: (type(k).__name__, repr(k))):
            _feed_content(key, h)
            _feed_content(value[key], h)
    elif isinstance(value, (list, tuple)):
        h.update(b"seq%d:" % len(value))
        for item in value:
            _feed_content(item, h)
    else:
        leaf = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        h.update(b"leaf%d:" % len(leaf))
        h.update(leaf)


def to_bytes(state: Any) -> bytes:
    """Serialize a snapshot tree into a self-describing blob."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    return MAGIC + bytes([VERSION]) + zlib.compress(payload)


def from_bytes(blob: bytes) -> Any:
    """Decode a blob back into a snapshot tree.

    Every call deserializes afresh, so one blob can be restored many
    times without the restores aliasing each other's arrays.
    """
    if not isinstance(blob, (bytes, bytearray)) or not blob.startswith(MAGIC):
        raise CkptError("not a FEM-2 checkpoint (bad magic)")
    if len(blob) < len(MAGIC) + 1:
        raise CkptError("truncated checkpoint blob")
    version = blob[len(MAGIC)]
    if version != VERSION:
        raise CkptError(
            f"checkpoint version {version} not supported (expected {VERSION})"
        )
    try:
        return pickle.loads(zlib.decompress(bytes(blob[len(MAGIC) + 1:])))
    except CkptError:
        raise
    except Exception as exc:
        raise CkptError(f"corrupt checkpoint blob: {exc}") from exc
