"""Checkpoint blob codec: a tagged, versioned, compressed pickle.

A checkpoint is the plain-data tree produced by
``Fem2Program.snapshot()``.  Code is never part of a blob — task bodies
and the code registry are re-created by the program factory on the
restore side, which is what models recovering onto *spare hardware*
running the same program image.

Layout: ``b"FEM2CKPT"`` + one version byte + zlib-compressed pickle.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any

from ..errors import CkptError

MAGIC = b"FEM2CKPT"
VERSION = 1


def to_bytes(state: Any) -> bytes:
    """Serialize a snapshot tree into a self-describing blob."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    return MAGIC + bytes([VERSION]) + zlib.compress(payload)


def from_bytes(blob: bytes) -> Any:
    """Decode a blob back into a snapshot tree.

    Every call deserializes afresh, so one blob can be restored many
    times without the restores aliasing each other's arrays.
    """
    if not isinstance(blob, (bytes, bytearray)) or not blob.startswith(MAGIC):
        raise CkptError("not a FEM-2 checkpoint (bad magic)")
    if len(blob) < len(MAGIC) + 1:
        raise CkptError("truncated checkpoint blob")
    version = blob[len(MAGIC)]
    if version != VERSION:
        raise CkptError(
            f"checkpoint version {version} not supported (expected {VERSION})"
        )
    try:
        return pickle.loads(zlib.decompress(bytes(blob[len(MAGIC) + 1:])))
    except CkptError:
        raise
    except Exception as exc:
        raise CkptError(f"corrupt checkpoint blob: {exc}") from exc
