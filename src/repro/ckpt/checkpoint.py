"""Periodic checkpointing and restore-from-checkpoint recovery.

The :class:`Checkpointer` drives the event engine *itself* rather than
scheduling checkpoint events, so safe points fall exactly between
engine events and a checkpointed run's simulated clock is bit-identical
to an un-checkpointed one.  Snapshots are serialized immediately
(:mod:`repro.ckpt.codec`), so the blob size metrics reflect what a real
machine would write to stable storage.

Recovery restores a blob into a *fresh* program built by a caller
supplied factory — the model is faulty hardware swapped for spares that
boot the same program image.  Deterministic replay of each live task's
journal (see :meth:`repro.sysvm.runtime.Runtime._replay`) rebuilds the
un-serializable coroutines; re-scheduling every captured event in its
original (time, seq) order makes the resumed run bit-identical.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..errors import CkptError
from .codec import from_bytes, to_bytes


@dataclass
class Checkpoint:
    """One captured machine state: sim time + serialized blob."""

    time: int
    blob: bytes = field(repr=False)

    @property
    def nbytes(self) -> int:
        return len(self.blob)

    def state(self) -> Any:
        """A fresh deserialization of the captured snapshot tree."""
        return from_bytes(self.blob)


class Checkpointer:
    """Takes checkpoints of a program every *interval* simulated cycles.

    Use :meth:`run` instead of ``program.runtime.run()``; it steps the
    engine one event at a time and captures a snapshot whenever the next
    event would cross the checkpoint boundary.  Because nothing is ever
    *scheduled*, final cycle counts match the plain run exactly.
    """

    def __init__(self, program, interval: int, keep: Optional[int] = None) -> None:
        if interval <= 0:
            raise CkptError(f"checkpoint interval must be positive, got {interval}")
        self.program = program
        self.interval = interval
        #: retain at most this many checkpoints (oldest dropped); None = all
        self.keep = keep
        self.checkpoints: List[Checkpoint] = []
        #: wall-clock seconds spent snapshotting + serializing (host
        #: overhead — simulated time is never charged)
        self.host_seconds = 0.0

    def take(self) -> Checkpoint:
        """Capture a checkpoint right now (between events).

        Metrics and spans are recorded *after* the state is captured, so
        the act of checkpointing never perturbs the checkpoint itself.
        """
        engine = self.program.machine.engine
        t0 = _time.perf_counter()
        blob = to_bytes(self.program.snapshot())
        elapsed = _time.perf_counter() - t0
        ckpt = Checkpoint(time=engine.now, blob=blob)
        self.checkpoints.append(ckpt)
        if self.keep is not None:
            while len(self.checkpoints) > self.keep:
                self.checkpoints.pop(0)
        self.host_seconds += elapsed
        metrics = self.program.metrics
        metrics.incr("ckpt.snapshots")
        metrics.incr("ckpt.bytes", ckpt.nbytes)
        metrics.observe("ckpt.blob_bytes", ckpt.nbytes)
        tracer = self.program.tracer
        if tracer is not None and tracer.enabled:
            span = tracer.begin(
                "ckpt.snapshot", f"t={engine.now}", engine.now,
                bytes=ckpt.nbytes, host_seconds=round(elapsed, 6),
            )
            tracer.end(span, engine.now)  # zero simulated cycles, by design
        return ckpt

    def run(self, max_events: int = 5_000_000) -> int:
        """Drain the event queue, checkpointing at interval boundaries.

        Returns events processed.  Stops early when the engine halts
        (a fault injector requested checkpointed recovery); the caller
        then recovers via :meth:`recover` or :func:`restore_program`.
        """
        engine = self.program.machine.engine
        if not self.checkpoints:
            # checkpoint zero: a restore point exists even when the
            # first fault beats the first interval crossing
            self.take()
        next_at = engine.now + self.interval
        processed = 0
        while processed < max_events and not engine.halted:
            nxt = engine._peek()
            if nxt is None:
                break
            if nxt.time >= next_at:
                self.take()
                # re-anchor on the upcoming event so idle stretches don't
                # produce a burst of identical checkpoints
                next_at = nxt.time + self.interval
                continue
            engine.step()
            processed += 1
        return processed

    def latest(self) -> Checkpoint:
        if not self.checkpoints:
            raise CkptError("no checkpoint has been taken")
        return self.checkpoints[-1]

    def recover(self, factory: Callable[[], Any]) -> Any:
        """Build a fresh program with *factory* and restore the latest
        checkpoint into it (the spare-hardware model).  The checkpointer
        re-targets the new program so checkpointing can continue.
        Returns the restored program."""
        ckpt = self.latest()
        program = factory()
        restore_program(program, ckpt)
        metrics = program.metrics
        metrics.incr("ckpt.recoveries")
        tracer = program.tracer
        if tracer is not None and tracer.enabled:
            tracer.point(
                "ckpt.recover", f"from_t={ckpt.time}",
                program.machine.engine.now, bytes=ckpt.nbytes,
            )
        self.program = program
        return program


def restore_program(program, checkpoint: Checkpoint) -> Any:
    """Install *checkpoint* into a freshly built *program*.

    The program must have been produced by the same factory as the
    checkpointed one (same config, same registered task types) with
    ``journal=True``; the blob carries no code.
    """
    program.restore(checkpoint.state())
    return program
