"""Standard workloads for the experiment suite.

One place defines the problems every benchmark sweeps over, so E1..E12
measure the same models and the EXPERIMENTS.md numbers are
reproducible run to run (everything here is deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..fem import Constraints, LoadSet, Material, Mesh, pratt_truss, rect_grid
from ..hardware.machine import MachineConfig

#: Material used by every benchmark problem.
BENCH_MATERIAL = Material(e=70e9, nu=0.3, thickness=0.01, area=0.01, inertia=1e-5)


@dataclass
class Problem:
    """A ready-to-solve structural problem."""

    name: str
    mesh: Mesh
    constraints: Constraints
    loads: LoadSet
    material: Material = BENCH_MATERIAL


def plane_stress_cantilever(n: int, aspect: float = 2.0) -> Problem:
    """The canonical E1/E2/E9 workload: an n x (n//2) cantilevered plate
    under tip shear.  ``n`` is the cell count along x."""
    ny = max(1, n // 2)
    mesh = rect_grid(n, ny, aspect, aspect / 2.0)
    constraints = Constraints(mesh).fix_nodes(mesh.nodes_on(x=0.0))
    loads = LoadSet("tip").add_nodal_many(mesh.nodes_on(x=aspect), 1, -1e4)
    return Problem(f"cantilever{n}x{ny}", mesh, constraints, loads)


def truss_bridge(panels: int = 8) -> Problem:
    """A Pratt truss under a midspan load."""
    mesh = pratt_truss(panels, panel=2.0, height=2.0)
    constraints = Constraints(mesh).fix(0)
    constraints.prescribe(panels, 1, 0.0)  # roller at the far abutment
    loads = LoadSet("mid").add_nodal(panels // 2, 1, -1e5)
    return Problem(f"truss{panels}", mesh, constraints, loads)


def machine_sweep(cluster_counts: Tuple[int, ...] = (1, 2, 4, 8),
                  pes_per_cluster: int = 5) -> List[MachineConfig]:
    """The configuration ladder used by the scaling experiments."""
    return [
        MachineConfig(
            n_clusters=c,
            pes_per_cluster=pes_per_cluster,
            memory_words_per_cluster=16_000_000,
            topology="complete" if c <= 2 else "hypercube" if (c & (c - 1)) == 0 else "complete",
        )
        for c in cluster_counts
    ]


def default_config(n_clusters: int = 4, pes: int = 5) -> MachineConfig:
    return MachineConfig(
        n_clusters=n_clusters,
        pes_per_cluster=pes,
        memory_words_per_cluster=16_000_000,
    )
