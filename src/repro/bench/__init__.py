"""Benchmark support: standard workloads and the experiment harness."""

from .harness import Experiment, speedup_series, summarize_series
from .workloads import (
    BENCH_MATERIAL,
    Problem,
    default_config,
    machine_sweep,
    plane_stress_cantilever,
    truss_bridge,
)

__all__ = [
    "Experiment",
    "speedup_series",
    "summarize_series",
    "BENCH_MATERIAL",
    "Problem",
    "default_config",
    "machine_sweep",
    "plane_stress_cantilever",
    "truss_bridge",
]
