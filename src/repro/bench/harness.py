"""Experiment harness: table printing and machine-readable run records.

Every benchmark prints its table through :class:`Experiment` so the
output format is uniform and EXPERIMENTS.md can quote it directly.
Each experiment also exports as a plain-dict record (:meth:`to_record`/
:meth:`to_json`) so ``benchmarks/run_all.py`` can write ``BENCH_*.json``
artifacts that perf trajectories diff across commits.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..appvm.display import render_table
from ..obs import plain


@dataclass
class Experiment:
    """One experiment: id, title, and a growing table of results.

    ``spans`` optionally carries a span-profile summary (see
    :mod:`repro.obs`) so a record answers "where did the cycles go"
    alongside the table.
    """

    exp_id: str
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    spans: Optional[Dict[str, Any]] = None

    def set_headers(self, *headers: str) -> None:
        self.headers = list(headers)

    def add_row(self, *values: Any) -> None:
        if self.headers and len(values) != len(self.headers):
            raise ValueError(
                f"{self.exp_id}: row has {len(values)} cells, "
                f"table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def attach_spans(self, summary: Dict[str, Any]) -> None:
        """Attach a span-profile summary (already a plain dict)."""
        self.spans = plain(summary)

    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.rows:
            lines.append(render_table(self.headers, self.rows))
        for n in self.notes:
            lines.append(f"  note: {n}")
        return "\n".join(lines)

    def to_record(self) -> Dict[str, Any]:
        """The experiment as a plain dict of plain values (JSON-safe)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": plain(self.rows),
            "notes": list(self.notes),
            "spans": self.spans,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Experiment":
        """Rebuild an experiment from :meth:`to_record` output (the
        campaign layer round-trips per-point records through this)."""
        return cls(
            exp_id=record["exp_id"],
            title=record["title"],
            headers=list(record.get("headers", [])),
            rows=[list(r) for r in record.get("rows", [])],
            notes=list(record.get("notes", [])),
            spans=record.get("spans"),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_record(), indent=indent)

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    def show(self, file=None, json_path=None) -> None:
        """Print the table; optionally also write the JSON record."""
        print(self.render(), file=file or sys.stdout)
        if json_path is not None:
            self.write_json(json_path)

    def column(self, header: str) -> List[Any]:
        idx = self.headers.index(header)
        return [r[idx] for r in self.rows]


def speedup_series(cycles: Sequence[int]) -> List[float]:
    """Speedups relative to the first entry of a cycle series."""
    if not cycles:
        return []
    base = cycles[0]
    return [base / c if c else float("inf") for c in cycles]


def summarize_series(values: Sequence[float]) -> Dict[str, float]:
    """Order-independent aggregate of one metric across many records:
    ``{n, min, max, mean, total}``.  The campaign layer folds per-point
    ``fem2-bench/1`` metrics through this, so a report's aggregate block
    is identical however the points were distributed across workers."""
    vals = [float(v) for v in values]
    if not vals:
        return {"n": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "total": 0.0}
    total = sum(vals)
    return {
        "n": len(vals),
        "min": min(vals),
        "max": max(vals),
        "mean": total / len(vals),
        "total": total,
    }
