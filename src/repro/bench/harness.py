"""Experiment harness: table printing and run records.

Every benchmark prints its table through :class:`Experiment` so the
output format is uniform and EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..appvm.display import render_table


@dataclass
class Experiment:
    """One experiment: id, title, and a growing table of results."""

    exp_id: str
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def set_headers(self, *headers: str) -> None:
        self.headers = list(headers)

    def add_row(self, *values: Any) -> None:
        if self.headers and len(values) != len(self.headers):
            raise ValueError(
                f"{self.exp_id}: row has {len(values)} cells, "
                f"table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.rows:
            lines.append(render_table(self.headers, self.rows))
        for n in self.notes:
            lines.append(f"  note: {n}")
        return "\n".join(lines)

    def show(self, file=None) -> None:
        print(self.render(), file=file or sys.stdout)

    def column(self, header: str) -> List[Any]:
        idx = self.headers.index(header)
        return [r[idx] for r in self.rows]


def speedup_series(cycles: Sequence[int]) -> List[float]:
    """Speedups relative to the first entry of a cycle series."""
    if not cycles:
        return []
    base = cycles[0]
    return [base / c if c else float("inf") for c in cycles]
