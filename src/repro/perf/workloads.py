"""Deterministic full-stack workloads for the engine-equivalence harness.

Each workload builds a :class:`~repro.langvm.Fem2Program` with
journaling on (so the final fem2-ckpt/1 blob is comparable), runs it to
completion, and returns ``(program, result)``.  Between them they cover
every engine-facing dispatch path: worker-PE bursts, serialized kernel
work, cross-cluster messages, window reads/writes, task fan-out/wait,
restart-mode fault recovery (which exercises *cancelled* events), and
same-cycle event pileups (zero-cycle bursts).

Workloads take no arguments and use no randomness — the same call
produces the same simulation on every engine, which is exactly what the
harness diffs.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..hardware.faults import FaultInjector
from ..hardware.machine import MachineConfig
from ..langvm.parallel import forall_windows
from ..langvm.program import Fem2Program

__all__ = ["WORKLOADS", "fault_recovery", "message_storm", "window_pipeline"]


def _config(**overrides: Any) -> MachineConfig:
    base = dict(n_clusters=2, pes_per_cluster=3, memory_words_per_cluster=500_000)
    base.update(overrides)
    return MachineConfig(**base)


def message_storm() -> Tuple[Fem2Program, Any]:
    """Fan out waves of short tasks so kernel decode/dispatch dominates:
    many INITIATE/TERMINATE messages, frequent same-cycle completions."""
    prog = Fem2Program(_config(n_clusters=3), journal=True)

    @prog.task()
    def spark(ctx, index):
        # zero- and near-zero-cycle bursts pile events onto shared cycles
        yield ctx.compute(flops=index % 3)
        return index * 2

    @prog.task()
    def main(ctx):
        total = 0
        for wave in range(3):
            tids = yield ctx.initiate("spark", count=6)
            results = yield ctx.wait(tids)
            total += sum(results.values())
        return total

    result = prog.run("main")
    return prog, result


def window_pipeline() -> Tuple[Fem2Program, Any]:
    """Data-parallel window traffic: remote reads/writes with non-trivial
    payloads, so network latency and bandwidth serialization matter."""
    prog = Fem2Program(_config(), journal=True)

    @prog.task()
    def stage(ctx, win, band):
        data = yield ctx.read(win)
        yield ctx.compute(flops=int(data.size) * 4)
        yield ctx.write(win, data * 0.5 + band)

    @prog.task()
    def main(ctx):
        h = yield ctx.create(np.linspace(0.0, 1.0, 64))
        win = ctx.window(h)
        for _round in range(2):
            # disjoint bands per stage task (no overlapping plain writes)
            yield from forall_windows(ctx, "stage", win, 4)
        out = yield ctx.read(win)
        return float(out.sum())

    result = prog.run("main")
    return prog, result


def fault_recovery() -> Tuple[Fem2Program, Any]:
    """Restart-mode PE failure mid-run: the lost burst's completion event
    is *cancelled*, covering the engines' skip-on-dispatch paths."""
    prog = Fem2Program(_config(pes_per_cluster=4), journal=True)

    @prog.task()
    def grind(ctx, index):
        yield ctx.compute(flops=400 + 40 * index)
        return index

    @prog.task()
    def main(ctx):
        tids = yield ctx.initiate("grind", count=5)
        results = yield ctx.wait(tids)
        return sorted(results.values())

    injector = FaultInjector(prog.machine, runtime=prog.runtime, recovery="restart")
    injector.schedule_pe_failure(at=120, cluster_id=0, pe_index=1)
    result = prog.run("main")
    return prog, result


#: name -> workload, in harness execution order
WORKLOADS: Dict[str, Any] = {
    "message_storm": message_storm,
    "window_pipeline": window_pipeline,
    "fault_recovery": fault_recovery,
}
