"""The engine-equivalence harness: run once per engine, diff everything.

A *workload* is a zero-argument callable that builds a program, runs it
to completion, and returns ``(program, result)`` — the harness forces
the engine choice around the whole call via
:func:`repro.hardware.events.forced_engine`, so workload code never
mentions engines.  From each run it captures the four observables every
engine must preserve:

* the workload's own **result** value,
* the final simulated **clock** and **events_processed** count,
* the flattened **metrics** registry,
* the **fem2-ckpt/1 blob** of the final program state (when the program
  was built with ``journal=True``; otherwise blob comparison is skipped
  and the caller may require it via ``require_ckpt``).

The engine matrix defaults to every concrete engine
(:data:`repro.hardware.events.CONCRETE_ENGINES` — reference, fast,
compiled); each engine is diffed against the first, which serves as the
baseline.

:func:`compare_callable` is the coarser instrument for benchmark
records: it runs any function under each engine and diffs the
JSON-like return values after stripping host-time fields — this is how
``bench_e14_engine.py`` proves the E1–E13 records are engine-invariant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..ckpt.codec import to_bytes
from ..errors import CkptError
from ..hardware.events import CONCRETE_ENGINES, forced_engine

#: record keys that legitimately differ between runs (host wall-clock);
#: :func:`strip_volatile` removes them at any nesting depth before a diff
VOLATILE_KEYS = ("host_seconds",)


@dataclass
class EngineRun:
    """Everything observable from one workload execution on one engine."""

    engine: str
    result: Any
    clock: int
    events: int
    metrics: Dict[str, float]
    ckpt: Optional[bytes]
    host_seconds: float

    def summary(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "clock": self.clock,
            "events": self.events,
            "n_metrics": len(self.metrics),
            "ckpt_bytes": None if self.ckpt is None else len(self.ckpt),
            "host_seconds": round(self.host_seconds, 4),
        }


def run_workload(kind: str, workload: Callable[[], Tuple[Any, Any]]) -> EngineRun:
    """Execute *workload* with every machine forced onto engine *kind*."""
    t0 = time.perf_counter()
    with forced_engine(kind):
        program, result = workload()
    host = time.perf_counter() - t0
    engine = program.machine.engine
    try:
        blob: Optional[bytes] = to_bytes(program.snapshot())
    except CkptError:
        blob = None  # journaling off: final-state blob not available
    return EngineRun(
        engine=kind,
        result=result,
        clock=engine.now,
        events=engine.events_processed,
        metrics=dict(program.metrics.flat()),
        ckpt=blob,
        host_seconds=host,
    )


def _values_equal(a: Any, b: Any) -> bool:
    try:
        eq = a == b
    except Exception:
        return repr(a) == repr(b)
    if eq is True or eq is False:
        return eq
    # array-likes return elementwise results; collapse via all()
    try:
        return bool(getattr(eq, "all")())
    except Exception:
        return repr(a) == repr(b)


def _diff_runs(ref: EngineRun, other: EngineRun,
               require_ckpt: bool) -> List[str]:
    """Human-readable observable differences of *other* vs baseline."""
    a, b = ref.engine, other.engine
    mismatches: List[str] = []
    if not _values_equal(ref.result, other.result):
        mismatches.append(
            f"result: {a}={ref.result!r} {b}={other.result!r}"
        )
    if ref.clock != other.clock:
        mismatches.append(f"clock: {a}={ref.clock} {b}={other.clock}")
    if ref.events != other.events:
        mismatches.append(
            f"events_processed: {a}={ref.events} {b}={other.events}"
        )
    if ref.metrics != other.metrics:
        for k in sorted(set(ref.metrics) | set(other.metrics)):
            x, y = ref.metrics.get(k), other.metrics.get(k)
            if x != y:
                mismatches.append(f"metric {k}: {a}={x} {b}={y}")
    if ref.ckpt is None or other.ckpt is None:
        if require_ckpt:
            mismatches.append(
                "checkpoint blob unavailable (build the workload program "
                "with journal=True to compare fem2-ckpt/1 blobs)"
            )
    elif ref.ckpt != other.ckpt:
        mismatches.append(
            f"checkpoint blob: {a} {len(ref.ckpt)} vs {b} "
            f"{len(other.ckpt)} bytes, contents differ"
        )
    return mismatches


def equivalence_report(
    workload: Callable[[], Tuple[Any, Any]],
    require_ckpt: bool = False,
    engines: Sequence[str] = CONCRETE_ENGINES,
) -> Dict[str, Any]:
    """Run *workload* under every engine and diff the observables.

    The first engine in *engines* is the baseline each of the others is
    compared against.  Returns ``{"equal", "mismatches", "runs"}`` plus
    one :class:`EngineRun` entry per engine kind, where ``mismatches``
    is a list of human-readable difference descriptions (empty when the
    whole matrix agrees).
    """
    runs = {kind: run_workload(kind, workload) for kind in engines}
    ref = runs[engines[0]]
    mismatches: List[str] = []
    for kind in engines[1:]:
        mismatches.extend(_diff_runs(ref, runs[kind], require_ckpt))
    report: Dict[str, Any] = {
        "equal": not mismatches,
        "mismatches": mismatches,
        "runs": runs,
    }
    report.update(runs)
    return report


def assert_equivalent(
    workload: Callable[[], Tuple[Any, Any]],
    require_ckpt: bool = False,
    label: str = "workload",
    engines: Sequence[str] = CONCRETE_ENGINES,
) -> Dict[str, Any]:
    """:func:`equivalence_report`, raising ``AssertionError`` on any diff."""
    report = equivalence_report(
        workload, require_ckpt=require_ckpt, engines=engines
    )
    if not report["equal"]:
        detail = "\n  ".join(report["mismatches"])
        raise AssertionError(
            f"engines disagree on {label}:\n  {detail}"
        )
    return report


# -- benchmark-record comparison ------------------------------------------


def strip_volatile(value: Any, keys: Tuple[str, ...] = VOLATILE_KEYS) -> Any:
    """A copy of a JSON-like structure with volatile keys removed at any
    depth (host wall-clock times differ run to run by construction)."""
    if isinstance(value, dict):
        return {
            k: strip_volatile(v, keys) for k, v in value.items() if k not in keys
        }
    if isinstance(value, (list, tuple)):
        return [strip_volatile(v, keys) for v in value]
    return value


def diff_values(a: Any, b: Any, path: str = "$") -> List[str]:
    """Paths at which two JSON-like values differ (empty when equal)."""
    if isinstance(a, dict) and isinstance(b, dict):
        out: List[str] = []
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{path}.{k}: only in second")
            elif k not in b:
                out.append(f"{path}.{k}: only in first")
            else:
                out.extend(diff_values(a[k], b[k], f"{path}.{k}"))
        return out
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return [f"{path}: length {len(a)} vs {len(b)}"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(diff_values(x, y, f"{path}[{i}]"))
        return out
    if not _values_equal(a, b):
        return [f"{path}: {a!r} vs {b!r}"]
    return []


def compare_callable(
    fn: Callable[[], Any],
    keys: Tuple[str, ...] = VOLATILE_KEYS,
    engines: Sequence[str] = CONCRETE_ENGINES,
) -> Dict[str, Any]:
    """Run *fn* once per engine; diff its return values (volatile keys
    stripped) against the first engine's.  Returns ``{"equal",
    "diffs"}`` plus, per engine kind, its stripped value under
    ``<kind>`` and its wall-clock under ``<kind>_seconds``."""
    out: Dict[str, Any] = {}
    values: Dict[str, Any] = {}
    for kind in engines:
        t0 = time.perf_counter()
        with forced_engine(kind):
            value = fn()
        out[f"{kind}_seconds"] = time.perf_counter() - t0
        values[kind] = out[kind] = strip_volatile(value, keys)
    baseline = values[engines[0]]
    diffs: List[str] = []
    for kind in engines[1:]:
        for d in diff_values(baseline, values[kind]):
            diffs.append(f"{kind}: {d}")
    out["equal"] = not diffs
    out["diffs"] = diffs
    return out
