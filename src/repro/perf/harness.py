"""The engine-equivalence harness: run once per engine, diff everything.

A *workload* is a zero-argument callable that builds a program, runs it
to completion, and returns ``(program, result)`` — the harness forces
the engine choice around the whole call via
:func:`repro.hardware.events.forced_engine`, so workload code never
mentions engines.  From each run it captures the four observables the
fast engine must preserve:

* the workload's own **result** value,
* the final simulated **clock** and **events_processed** count,
* the flattened **metrics** registry,
* the **fem2-ckpt/1 blob** of the final program state (when the program
  was built with ``journal=True``; otherwise blob comparison is skipped
  and the caller may require it via ``require_ckpt``).

:func:`compare_callable` is the coarser instrument for benchmark
records: it runs any function under both engines and diffs the
JSON-like return values after stripping host-time fields — this is how
``bench_e14_engine.py`` proves the E1–E13 records are engine-invariant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ckpt.codec import to_bytes
from ..errors import CkptError
from ..hardware.events import forced_engine

#: record keys that legitimately differ between runs (host wall-clock);
#: :func:`strip_volatile` removes them at any nesting depth before a diff
VOLATILE_KEYS = ("host_seconds",)


@dataclass
class EngineRun:
    """Everything observable from one workload execution on one engine."""

    engine: str
    result: Any
    clock: int
    events: int
    metrics: Dict[str, float]
    ckpt: Optional[bytes]
    host_seconds: float

    def summary(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "clock": self.clock,
            "events": self.events,
            "n_metrics": len(self.metrics),
            "ckpt_bytes": None if self.ckpt is None else len(self.ckpt),
            "host_seconds": round(self.host_seconds, 4),
        }


def run_workload(kind: str, workload: Callable[[], Tuple[Any, Any]]) -> EngineRun:
    """Execute *workload* with every machine forced onto engine *kind*."""
    t0 = time.perf_counter()
    with forced_engine(kind):
        program, result = workload()
    host = time.perf_counter() - t0
    engine = program.machine.engine
    try:
        blob: Optional[bytes] = to_bytes(program.snapshot())
    except CkptError:
        blob = None  # journaling off: final-state blob not available
    return EngineRun(
        engine=kind,
        result=result,
        clock=engine.now,
        events=engine.events_processed,
        metrics=dict(program.metrics.flat()),
        ckpt=blob,
        host_seconds=host,
    )


def _values_equal(a: Any, b: Any) -> bool:
    try:
        eq = a == b
    except Exception:
        return repr(a) == repr(b)
    if eq is True or eq is False:
        return eq
    # array-likes return elementwise results; collapse via all()
    try:
        return bool(getattr(eq, "all")())
    except Exception:
        return repr(a) == repr(b)


def equivalence_report(
    workload: Callable[[], Tuple[Any, Any]],
    require_ckpt: bool = False,
) -> Dict[str, Any]:
    """Run *workload* under both engines and diff the observables.

    Returns ``{"equal", "mismatches", "reference", "fast"}`` where
    ``mismatches`` is a list of human-readable difference descriptions
    (empty when the engines agree).
    """
    ref = run_workload("reference", workload)
    fast = run_workload("fast", workload)
    mismatches: List[str] = []
    if not _values_equal(ref.result, fast.result):
        mismatches.append(
            f"result: reference={ref.result!r} fast={fast.result!r}"
        )
    if ref.clock != fast.clock:
        mismatches.append(f"clock: reference={ref.clock} fast={fast.clock}")
    if ref.events != fast.events:
        mismatches.append(
            f"events_processed: reference={ref.events} fast={fast.events}"
        )
    if ref.metrics != fast.metrics:
        keys = sorted(set(ref.metrics) | set(fast.metrics))
        for k in keys:
            a, b = ref.metrics.get(k), fast.metrics.get(k)
            if a != b:
                mismatches.append(f"metric {k}: reference={a} fast={b}")
    if ref.ckpt is None or fast.ckpt is None:
        if require_ckpt:
            mismatches.append(
                "checkpoint blob unavailable (build the workload program "
                "with journal=True to compare fem2-ckpt/1 blobs)"
            )
    elif ref.ckpt != fast.ckpt:
        mismatches.append(
            f"checkpoint blob: {len(ref.ckpt)} vs {len(fast.ckpt)} bytes, "
            "contents differ"
        )
    return {
        "equal": not mismatches,
        "mismatches": mismatches,
        "reference": ref,
        "fast": fast,
    }


def assert_equivalent(
    workload: Callable[[], Tuple[Any, Any]],
    require_ckpt: bool = False,
    label: str = "workload",
) -> Dict[str, Any]:
    """:func:`equivalence_report`, raising ``AssertionError`` on any diff."""
    report = equivalence_report(workload, require_ckpt=require_ckpt)
    if not report["equal"]:
        detail = "\n  ".join(report["mismatches"])
        raise AssertionError(
            f"engines disagree on {label}:\n  {detail}"
        )
    return report


# -- benchmark-record comparison ------------------------------------------


def strip_volatile(value: Any, keys: Tuple[str, ...] = VOLATILE_KEYS) -> Any:
    """A copy of a JSON-like structure with volatile keys removed at any
    depth (host wall-clock times differ run to run by construction)."""
    if isinstance(value, dict):
        return {
            k: strip_volatile(v, keys) for k, v in value.items() if k not in keys
        }
    if isinstance(value, (list, tuple)):
        return [strip_volatile(v, keys) for v in value]
    return value


def diff_values(a: Any, b: Any, path: str = "$") -> List[str]:
    """Paths at which two JSON-like values differ (empty when equal)."""
    if isinstance(a, dict) and isinstance(b, dict):
        out: List[str] = []
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{path}.{k}: only in second")
            elif k not in b:
                out.append(f"{path}.{k}: only in first")
            else:
                out.extend(diff_values(a[k], b[k], f"{path}.{k}"))
        return out
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return [f"{path}: length {len(a)} vs {len(b)}"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(diff_values(x, y, f"{path}[{i}]"))
        return out
    if not _values_equal(a, b):
        return [f"{path}: {a!r} vs {b!r}"]
    return []


def compare_callable(
    fn: Callable[[], Any],
    keys: Tuple[str, ...] = VOLATILE_KEYS,
) -> Dict[str, Any]:
    """Run *fn* once per engine; diff its return values (volatile keys
    stripped).  Returns ``{"equal", "diffs", "reference_seconds",
    "fast_seconds", "reference", "fast"}``."""
    t0 = time.perf_counter()
    with forced_engine("reference"):
        ref = fn()
    t1 = time.perf_counter()
    with forced_engine("fast"):
        fast = fn()
    t2 = time.perf_counter()
    ref_s, fast_s = strip_volatile(ref, keys), strip_volatile(fast, keys)
    diffs = diff_values(ref_s, fast_s)
    return {
        "equal": not diffs,
        "diffs": diffs,
        "reference_seconds": t1 - t0,
        "fast_seconds": t2 - t1,
        "reference": ref_s,
        "fast": fast_s,
    }
