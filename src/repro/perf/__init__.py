"""Performance layer: the fast-path engine's safety harness.

``repro.perf`` owns the proof obligations of the calendar-queue engine
(:class:`repro.hardware.calqueue.FastEventEngine`): any workload run
under ``engine="reference"`` and ``engine="fast"`` must produce
identical results, final metrics, clocks, and checkpoint blobs.  The
harness here runs both sides of that A/B and diffs them; the standard
workloads are small full-stack programs exercising every dispatch path
(bursts, kernel work, messages, windows, faults' happy path).

See DESIGN.md "Performance layer" for how this gates benchmarks, and
``benchmarks/bench_e14_engine.py`` for the wall-clock side.
"""

from .harness import (
    VOLATILE_KEYS,
    EngineRun,
    assert_equivalent,
    compare_callable,
    diff_values,
    equivalence_report,
    run_workload,
    strip_volatile,
)
from .workloads import WORKLOADS, fault_recovery, message_storm, window_pipeline

__all__ = [
    "VOLATILE_KEYS",
    "EngineRun",
    "assert_equivalent",
    "compare_callable",
    "diff_values",
    "equivalence_report",
    "run_workload",
    "strip_volatile",
    "WORKLOADS",
    "fault_recovery",
    "message_storm",
    "window_pipeline",
]
