"""The effect protocol between task bodies and the run-time system.

Task bodies in this simulation are Python *generator functions*: they
``yield`` effect objects and are resumed with the effect's result.  The
run-time (:mod:`repro.sysvm.runtime`) interprets each effect against
the simulated machine — charging PE cycles, formatting messages,
blocking and waking tasks — so the generator's control flow *is* the
task's control flow under the simulated clock.

The numerical analyst's VM (:mod:`repro.langvm`) wraps these effects in
the language constructs the paper lists (forall, pardo, windows,
broadcast, task control); nothing above the language layer yields raw
effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple

import numpy as np


class Effect:
    """Base class for everything a task body may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Effect):
    """Occupy the task's PE for *cycles* cycles of arithmetic.

    Resumes with ``None``.  ``flops`` optionally records how many of
    those cycles were floating-point work, for the E1 processing table.
    """

    cycles: int
    flops: int = 0


@dataclass(frozen=True)
class CreateArray(Effect):
    """Create an array in the local cluster, owned by this task.

    Resumes with an :class:`~repro.sysvm.storage.ArrayHandle`.  The data
    lives until the owner terminates ("data lifetime - lifetime of owner
    task") unless the task was spawned with ``retain_data=True``.
    """

    data: np.ndarray


@dataclass(frozen=True)
class FreeArray(Effect):
    """Explicitly release an array this task owns.  Resumes with None."""

    handle: Any


@dataclass(frozen=True)
class ReadWindow(Effect):
    """Read the data visible in a window.  Resumes with an ndarray copy.

    Local windows cost memory-touch cycles; remote windows cost a
    remote-call/return message pair.
    """

    window: Any


@dataclass(frozen=True)
class WriteWindow(Effect):
    """Assign the data visible in a window.  Resumes with None."""

    window: Any
    data: Any
    accumulate: bool = False  # += instead of =, for FEM assembly


@dataclass(frozen=True)
class Initiate(Effect):
    """"Initiate a task" / "dynamic creation of multiple task
    replications": start *count* replications of *task_type*.

    Resumes with the list of new task ids.  ``cluster`` pins placement;
    None lets the run-time's placement policy choose per replication.
    Each replication receives ``args`` plus, when ``index_arg`` is true,
    its replication index appended.
    """

    task_type: str
    args: Tuple[Any, ...] = ()
    count: int = 1
    cluster: Optional[int] = None
    index_arg: bool = True


@dataclass(frozen=True)
class WaitChildren(Effect):
    """Block until the listed child tasks terminate.

    Resumes with ``{tid: result}``.
    """

    tids: Tuple[int, ...]


@dataclass(frozen=True)
class WaitPause(Effect):
    """Block until the given child notifies that it paused.

    Resumes with ``None`` once the pause notification arrives.
    """

    tid: int


@dataclass(frozen=True)
class Pause(Effect):
    """"Pause and notify parent task."  Local data is retained; the task
    resumes (with ``None``) when the parent sends resume."""


@dataclass(frozen=True)
class ResumeChild(Effect):
    """"Resume a paused child task."  Non-blocking; resumes with None."""

    tid: int


@dataclass(frozen=True)
class Broadcast(Effect):
    """"Broadcast data to a set of tasks": deliver *value* to each task's
    mailbox.  Non-blocking; resumes with None."""

    tids: Tuple[int, ...]
    value: Any


@dataclass(frozen=True)
class Receive(Effect):
    """Take the next value from this task's mailbox (blocking).

    Resumes with the broadcast value.
    """


@dataclass(frozen=True)
class RemoteCall(Effect):
    """"Remote procedure call - location determined by location of data
    visible in a window."

    Executes procedure *proc* (a registered task type) at *cluster* —
    or, when cluster is None, at the cluster owning the first window
    argument.  Blocks until the remote return arrives; resumes with the
    procedure's result.
    """

    proc: str
    args: Tuple[Any, ...] = ()
    cluster: Optional[int] = None
