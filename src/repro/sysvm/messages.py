"""Messages between tasks and the operating system.

The paper enumerates exactly seven message types at the system
programmer's level:

    initiate K replications of a task of type T
    pause and notify parent task
    resume a child task
    terminate and notify parent
    remote procedure call
    remote procedure return
    load code/constants

:class:`MsgKind` reproduces that list one-for-one.  Everything the
numerical analyst's VM does — window traffic, broadcast, task control —
is expressed in these seven kinds (window reads and writes are remote
procedure calls against the owning cluster, as the paper's "remote
procedure call — location determined by location of data visible in a
window" prescribes).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import MessageError


class MsgKind(enum.Enum):
    """The seven FEM-2 message types."""

    INITIATE_TASK = "initiate_task"
    PAUSE_NOTIFY = "pause_notify"
    RESUME_TASK = "resume_task"
    TERMINATE_NOTIFY = "terminate_notify"
    REMOTE_CALL = "remote_call"
    REMOTE_RETURN = "remote_return"
    LOAD_CODE = "load_code"


#: Required payload fields per message kind; decode validates these.
REQUIRED_FIELDS: Dict[MsgKind, tuple] = {
    MsgKind.INITIATE_TASK: ("task_type", "count", "args"),
    MsgKind.PAUSE_NOTIFY: ("child",),
    MsgKind.RESUME_TASK: ("child",),
    MsgKind.TERMINATE_NOTIFY: ("child", "result"),
    MsgKind.REMOTE_CALL: ("service", "call_id"),
    MsgKind.REMOTE_RETURN: ("call_id", "result"),
    MsgKind.LOAD_CODE: ("task_type", "code_words"),
}

_msg_seq = itertools.count(1)


@dataclass
class Message:
    """One message in flight.

    ``src_task``/``dst_task`` are task ids (None when the endpoint is
    the operating system itself); ``src_cluster``/``dst_cluster`` are
    set when the message is routed.  ``size_words`` is filled by the
    codec when the message is formatted.
    """

    kind: MsgKind
    payload: Dict[str, Any] = field(default_factory=dict)
    src_task: Optional[int] = None
    dst_task: Optional[int] = None
    src_cluster: int = 0
    dst_cluster: int = 0
    size_words: int = 0
    #: construction-time placeholder; the OS re-stamps this from its own
    #: snapshotted counter when the message is sent, so wire ids depend
    #: only on the run's history (never on host-process history)
    msg_id: int = field(default_factory=lambda: next(_msg_seq))

    def validate(self) -> None:
        if not isinstance(self.kind, MsgKind):
            raise MessageError(f"unknown message kind {self.kind!r}")
        missing = [f for f in REQUIRED_FIELDS[self.kind] if f not in self.payload]
        if missing:
            raise MessageError(
                f"{self.kind.value} message missing fields {missing}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message({self.kind.value}, #{self.msg_id}, "
            f"{self.src_cluster}->{self.dst_cluster}, {self.size_words}w)"
        )


# -- constructors ------------------------------------------------------------

def initiate_task(task_type: str, count: int, args: tuple, parent: Optional[int]) -> Message:
    """"Initiate K replications of a task of type T"."""
    if count < 1:
        raise MessageError(f"replication count must be >= 1, got {count}")
    return Message(
        MsgKind.INITIATE_TASK,
        {"task_type": task_type, "count": count, "args": args},
        src_task=parent,
    )


def pause_notify(child: int, parent: Optional[int]) -> Message:
    """"Pause and notify parent task"."""
    return Message(MsgKind.PAUSE_NOTIFY, {"child": child}, src_task=child, dst_task=parent)


def resume_task(child: int, parent: Optional[int]) -> Message:
    """"Resume a child task"."""
    return Message(MsgKind.RESUME_TASK, {"child": child}, src_task=parent, dst_task=child)


def terminate_notify(child: int, parent: Optional[int], result: Any) -> Message:
    """"Terminate and notify parent"."""
    return Message(
        MsgKind.TERMINATE_NOTIFY,
        {"child": child, "result": result},
        src_task=child,
        dst_task=parent,
    )


def remote_call(service: str, call_id: int, caller: Optional[int], **kwargs: Any) -> Message:
    """"Remote procedure call" — service plus keyword operands."""
    payload = {"service": service, "call_id": call_id}
    payload.update(kwargs)
    return Message(MsgKind.REMOTE_CALL, payload, src_task=caller)


def remote_return(call_id: int, result: Any, dst_task: Optional[int]) -> Message:
    """"Remote procedure return"."""
    return Message(
        MsgKind.REMOTE_RETURN, {"call_id": call_id, "result": result}, dst_task=dst_task
    )


def load_code(task_type: str, code_words: int) -> Message:
    """"Load code/constants"."""
    return Message(MsgKind.LOAD_CODE, {"task_type": task_type, "code_words": code_words})
