"""Storage representations for scalars, arrays, and descriptors.

The system programmer's VM fixes "storage representations for scalars,
arrays, etc."  Sizes are measured in *words*; one word holds one
floating-point value, integer, or pointer (the FEM's 32-bit heritage,
kept simple).  :func:`words_of` is the single sizing rule used by the
message codec, the heap, and the storage-requirements estimates, so E1
measures and estimates in the same units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import SysVMError

#: Fixed overhead of any array: base pointer, rank, dims, dtype tag.
ARRAY_DESCRIPTOR_WORDS = 6
#: A window descriptor: array id, kind tag, 2x(offset, extent), owner.
WINDOW_DESCRIPTOR_WORDS = 8
#: Message header: kind, id, src/dst task, src/dst cluster, size, flags.
MESSAGE_HEADER_WORDS = 8
#: Activation record overhead beyond locals: links, state, code pointer.
ACTIVATION_BASE_WORDS = 16


def words_of(value: Any) -> int:
    """Words needed to store or transmit *value*.

    Scalars cost one word; strings pack four characters per word;
    arrays cost their element count plus a descriptor; containers cost
    the sum of their parts plus one length word.
    """
    if value is None:
        return 1
    if isinstance(value, (bool, int, float, complex)):
        return 2 if isinstance(value, complex) else 1
    if isinstance(value, str):
        return 1 + (len(value) + 3) // 4
    if isinstance(value, np.ndarray):
        return ARRAY_DESCRIPTOR_WORDS + int(value.size)
    if isinstance(value, np.generic):
        return 1
    if isinstance(value, (list, tuple)):
        return 1 + sum(words_of(v) for v in value)
    if isinstance(value, dict):
        return 1 + sum(words_of(k) + words_of(v) for k, v in value.items())
    if hasattr(value, "size_words"):
        return int(value.size_words())
    raise SysVMError(f"cannot size value of type {type(value).__name__}")


@dataclass(frozen=True)
class ArrayHandle:
    """A descriptor for an array resident in one cluster's memory.

    The data itself ("owned by a single task") lives in the
    :class:`DataStore`; everything off-cluster sees only this handle and
    must reach the data through windows.
    """

    array_id: int
    shape: Tuple[int, ...]
    dtype: str
    cluster: int
    owner_task: Optional[int]

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    def size_words(self) -> int:
        """Transmission/storage size of the *handle* (not the data)."""
        return ARRAY_DESCRIPTOR_WORDS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayHandle(#{self.array_id} {self.dtype}{list(self.shape)} @c{self.cluster})"


class DataStore:
    """Cluster-resident array storage with capacity accounting.

    ``register`` reserves words in the owning cluster's shared memory;
    ``drop`` releases them.  Access checks live at the language layer
    (:mod:`repro.langvm.ownership`); the store itself is the physical
    model.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self._arrays: Dict[int, np.ndarray] = {}
        self._handles: Dict[int, ArrayHandle] = {}
        self._next_id = 1

    def register(
        self, data: np.ndarray, cluster: int, owner_task: Optional[int] = None
    ) -> ArrayHandle:
        data = np.asarray(data)
        aid = self._next_id
        self._next_id += 1
        handle = ArrayHandle(aid, data.shape, str(data.dtype), cluster, owner_task)
        self.machine.cluster(cluster).memory.reserve(
            ARRAY_DESCRIPTOR_WORDS + int(data.size), tag="arrays"
        )
        self._arrays[aid] = data
        self._handles[aid] = handle
        return handle

    def raw(self, handle: ArrayHandle) -> np.ndarray:
        """The backing array.  Physical access only — callers above the
        system VM must go through windows."""
        try:
            return self._arrays[handle.array_id]
        except KeyError:
            raise SysVMError(f"stale array handle #{handle.array_id}") from None

    def drop(self, handle: ArrayHandle) -> None:
        arr = self.raw(handle)
        self.machine.cluster(handle.cluster).memory.release(
            ARRAY_DESCRIPTOR_WORDS + int(arr.size), tag="arrays"
        )
        del self._arrays[handle.array_id]
        del self._handles[handle.array_id]

    def drop_owned_by(self, task_id: int) -> int:
        """Release every array owned by a task ("data lifetime = lifetime
        of owner task").  Returns the number of arrays dropped."""
        doomed = [h for h in self._handles.values() if h.owner_task == task_id]
        for h in doomed:
            self.drop(h)
        return len(doomed)

    def snapshot(self) -> Dict:
        """Arrays, handles (as field tuples; ArrayHandle is frozen), and
        the id counter.  Shared-memory words are accounted by the
        hardware snapshot, so restore installs without re-reserving."""
        return {
            "next_id": self._next_id,
            "arrays": [
                (aid, self._arrays[aid],
                 (h.array_id, tuple(h.shape), h.dtype, h.cluster, h.owner_task))
                for aid, h in self._handles.items()
            ],
        }

    def restore(self, state: Dict) -> None:
        self._next_id = state["next_id"]
        self._arrays = {}
        self._handles = {}
        for aid, arr, hfields in state["arrays"]:
            self._arrays[aid] = arr
            self._handles[aid] = ArrayHandle(*hfields)

    def live_handles(self) -> Tuple[ArrayHandle, ...]:
        return tuple(self._handles.values())

    def __contains__(self, handle: ArrayHandle) -> bool:
        return handle.array_id in self._arrays
