"""Task control blocks, ready queues, and dispatch policies.

"Messages arriving in the input queue of any cluster can be processed
by any available PE" — the default :class:`AnyPEDispatch` implements
exactly that.  :class:`StaticDispatch` pins each task to one worker PE,
the policy the paper's architecture argues *against*; experiment E6
compares the two under skewed load.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from ..errors import SchedulingError
from ..hardware.cluster import Cluster
from ..hardware.pe import ProcessingElement
from .activation import ActivationRecord


class TaskState(enum.Enum):
    READY = "ready"        # in a ready queue, waiting for a PE
    RUNNING = "running"    # assigned to a PE
    BLOCKED = "blocked"    # waiting for a message/children/mailbox
    PAUSED = "paused"      # paused itself; waiting for parent's resume
    DONE = "done"
    FAILED = "failed"


#: Legal state transitions; the runtime asserts every move against this.
_TRANSITIONS: Dict[TaskState, Set[TaskState]] = {
    TaskState.READY: {TaskState.RUNNING},
    TaskState.RUNNING: {
        TaskState.BLOCKED,
        TaskState.PAUSED,
        TaskState.DONE,
        TaskState.FAILED,
        TaskState.READY,  # preemption point (not used by default policies)
    },
    TaskState.BLOCKED: {TaskState.READY, TaskState.FAILED},
    TaskState.PAUSED: {TaskState.READY, TaskState.FAILED},
    TaskState.DONE: set(),
    TaskState.FAILED: set(),
}


@dataclass
class TCB:
    """Task control block: the run-time representation of a task."""

    tid: int
    task_type: str
    cluster: int
    parent: Optional[int]
    coro: Any
    record: ActivationRecord
    state: TaskState = TaskState.READY
    pe: Optional[ProcessingElement] = None
    result: Any = None
    error: Optional[BaseException] = None
    retain_data: bool = False
    #: why the task is blocked: ("children", frozenset), ("rpc", call_id),
    #: ("receive",), ("pause_of", tid) — or None
    waiting: Optional[Tuple] = None
    #: value to feed the coroutine at next dispatch
    wake_value: Any = None
    #: results of terminated children not yet consumed by a WaitChildren
    child_results: Dict[int, Any] = field(default_factory=dict)
    children: Set[int] = field(default_factory=set)
    #: child tids whose pause notification arrived, not yet consumed
    pause_events: Set[int] = field(default_factory=set)
    #: broadcast values awaiting a Receive
    mailbox: Deque[Any] = field(default_factory=deque)
    #: set when this task body is a remote procedure: (cluster, task, call_id)
    rpc_reply_to: Optional[Tuple[int, Optional[int], int]] = None
    #: a resume message arrived before the pause did (message race)
    pending_resume: bool = False
    created_at: int = 0
    first_run_at: Optional[int] = None
    finished_at: Optional[int] = None
    #: pending continuation descriptor while a PE burst is in flight:
    #: ("step", value) | ("send_rpc", dst, msg, call_id) |
    #: ("send_initiate", messages, tids) | ("send_pause",) |
    #: ("send_bcast", targets, value) | ("send_resume", home, msg)
    cont: Optional[Tuple] = None
    #: deterministic-replay journal: every ("send", value)/("throw", exc)
    #: fed to the coroutine, recorded only when the runtime journals
    journal: List[Tuple[str, Any]] = field(default_factory=list)

    def transition(self, new: TaskState) -> None:
        if new not in _TRANSITIONS[self.state]:
            raise SchedulingError(
                f"task {self.tid}: illegal transition {self.state.value} -> {new.value}"
            )
        self.state = new

    def is_live(self) -> bool:
        return self.state not in (TaskState.DONE, TaskState.FAILED)

    # the coroutine is recreated from the registered body + journal
    # replay; the PE binding and activation record are rebuilt by the
    # runtime (which owns the PE objects and the heap)
    _snapshot_exempt = ("coro", "pe", "record")

    def snapshot(self) -> Dict[str, Any]:
        """Every TCB field as plain data (lint rule S1 audits this list
        against the dataclass fields above)."""
        rec = self.record
        return {
            "tid": self.tid,
            "task_type": self.task_type,
            "cluster": self.cluster,
            "parent": self.parent,
            "state": self.state.value,
            "pe_index": self.pe.index if self.pe is not None else None,
            "result": self.result,
            "error": self.error,
            "retain_data": self.retain_data,
            "waiting": self.waiting,
            "wake_value": self.wake_value,
            "child_results": dict(self.child_results),
            "children": sorted(self.children),
            "pause_events": sorted(self.pause_events),
            "mailbox": list(self.mailbox),
            "rpc_reply_to": self.rpc_reply_to,
            "pending_resume": self.pending_resume,
            "created_at": self.created_at,
            "first_run_at": self.first_run_at,
            "finished_at": self.finished_at,
            "cont": self.cont,
            "journal": list(self.journal),
            "record": {
                "task_id": rec.task_id,
                "task_type": rec.task_type,
                "cluster": rec.cluster,
                "heap_addr": rec.heap_addr,
                "size_words": rec.size_words,
                "params": rec.params,
                "locals": dict(rec.locals),
                "released": rec.released,
            },
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Install plain fields; ``coro``/``pe``/``record`` are rebuilt
        by :meth:`Runtime.restore` (journal replay / PE lookup / heap)."""
        self.coro = None
        self.state = TaskState(state["state"])
        self.result = state["result"]
        self.error = state["error"]
        self.retain_data = state["retain_data"]
        self.waiting = state["waiting"]
        self.wake_value = state["wake_value"]
        self.child_results = dict(state["child_results"])
        self.children = set(state["children"])
        self.pause_events = set(state["pause_events"])
        self.mailbox = deque(state["mailbox"])
        self.rpc_reply_to = state["rpc_reply_to"]
        self.pending_resume = state["pending_resume"]
        self.created_at = state["created_at"]
        self.first_run_at = state["first_run_at"]
        self.finished_at = state["finished_at"]
        self.cont = state["cont"]
        self.journal = list(state["journal"])


class DispatchPolicy:
    """Chooses a PE for a ready task within a cluster."""

    name = "abstract"

    def pe_for(self, cluster: Cluster, tcb: TCB) -> Optional[ProcessingElement]:
        raise NotImplementedError


class AnyPEDispatch(DispatchPolicy):
    """Any available worker PE serves any ready task (the FEM-2 design)."""

    name = "any_pe"

    def pe_for(self, cluster: Cluster, tcb: TCB) -> Optional[ProcessingElement]:
        for pe in cluster.worker_pes:
            if pe.is_available():
                return pe
        return None


class StaticDispatch(DispatchPolicy):
    """Each task is pinned to worker ``tid mod n_workers`` (the baseline
    the paper's any-PE rule improves on)."""

    name = "static"

    def pe_for(self, cluster: Cluster, tcb: TCB) -> Optional[ProcessingElement]:
        workers = cluster.worker_pes
        if not workers:
            return None
        pe = workers[tcb.tid % len(workers)]
        return pe if pe.is_available() else None


class ReadyQueue:
    """Per-cluster FIFO of ready tasks, with policy-aware selection.

    ``pick`` returns the first queued task the policy can place *now*,
    which lets an any-PE policy drain the queue in order while a static
    policy skips tasks whose pinned PE is busy.
    """

    def __init__(self, cluster_id: int) -> None:
        self.cluster_id = cluster_id
        self._queue: Deque[TCB] = deque()

    def push(self, tcb: TCB) -> None:
        if tcb.state is not TaskState.READY:
            raise SchedulingError(
                f"task {tcb.tid} pushed to ready queue in state {tcb.state.value}"
            )
        self._queue.append(tcb)

    def pick(
        self, cluster: Cluster, policy: DispatchPolicy
    ) -> Optional[Tuple[TCB, ProcessingElement]]:
        for i, tcb in enumerate(self._queue):
            pe = policy.pe_for(cluster, tcb)
            if pe is not None:
                del self._queue[i]
                return tcb, pe
        return None

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)
