"""The FEM-2 run-time system: effect interpretation over the machine.

This module implements the system programmer's virtual machine proper:
it owns the task table, per-cluster heaps / code stores / ready queues /
kernels, and the global data store, and it interprets every effect a
task body yields (see :mod:`repro.sysvm.effects`) by charging PE cycles
and exchanging the paper's seven message types over the simulated
network.

The numerical analyst's VM builds its language constructs on this; the
application VM builds on that.  Nothing here knows about finite
elements.
"""

from __future__ import annotations

import copy
from collections import defaultdict, deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    CkptError,
    MemoryCapacityError,
    MessageError,
    RoutingError,
    SchedulingError,
    SysVMError,
)
from ..hardware.machine import Machine
from ..hardware.pe import ProcessingElement
from . import effects as fx
from .activation import ActivationRecord, allocate_record, release_record
from .code import ClusterCodeStore, CodeBlock, CodeRegistry
from .codec import decode, encode
from .heap import Heap
from .kernel import Kernel
from .messages import (
    Message,
    MsgKind,
    initiate_task,
    load_code,
    pause_notify,
    remote_call,
    remote_return,
    resume_task,
    terminate_notify,
)
from .scheduler import AnyPEDispatch, DispatchPolicy, ReadyQueue, TaskState, TCB
from .storage import DataStore, words_of

PLACEMENTS = ("round_robin", "least_loaded", "local")


class RemoteFault:
    """Error outcome of a remote call, delivered back to the caller and
    re-raised in its task body as a :class:`SysVMError`."""

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message

    def size_words(self) -> int:
        return 1 + (len(self.message) + 3) // 4


class SimpleContext:
    """Default first argument handed to task bodies.

    Exposes identity and machine shape; the language layer installs a
    richer context via :attr:`Runtime.ctx_factory`.
    """

    def __init__(self, runtime: "Runtime", tcb: TCB) -> None:
        self._runtime = runtime
        self._tcb = tcb

    @property
    def task_id(self) -> int:
        return self._tcb.tid

    @property
    def cluster(self) -> int:
        return self._tcb.cluster

    @property
    def n_clusters(self) -> int:
        return self._runtime.machine.config.n_clusters

    @property
    def now(self) -> int:
        return self._runtime.machine.now

    @property
    def record(self):
        """The task's activation record (local data)."""
        return self._tcb.record

    # -- observability ------------------------------------------------------

    def obs_begin(self, kind: str, label: str, **attrs):
        """Open a span parented to this task's span; None when tracing is
        off, so callers pass the result straight to :meth:`obs_end`.
        During journal replay spans are suppressed — the original run
        already recorded them."""
        obs = self._runtime.obs
        if obs is None or not obs.enabled or self._runtime._replaying:
            return None
        return obs.begin(
            kind, label, self.now,
            parent=self._runtime.span_of(self.task_id), **attrs,
        )

    def obs_end(self, span, **attrs) -> None:
        if span is not None:
            self._runtime.obs.end(span, self.now, **attrs)


class Runtime:
    """One executing FEM-2 system: machine + operating system state."""

    def __init__(
        self,
        machine: Machine,
        registry: Optional[CodeRegistry] = None,
        dispatch_policy: Optional[DispatchPolicy] = None,
        placement: str = "round_robin",
        strict: bool = True,
        trace=None,
    ) -> None:
        if placement not in PLACEMENTS:
            raise SchedulingError(f"unknown placement {placement!r}; one of {PLACEMENTS}")
        self.machine = machine
        self.registry = registry or CodeRegistry()
        self.dispatch_policy = dispatch_policy or AnyPEDispatch()
        self.placement = placement
        self.strict = strict
        self.trace = trace
        self.data = DataStore(machine)
        self.metrics = machine.metrics
        # cached per-MsgKind counter cells for _send (see MetricsRegistry)
        self._msg_cells: Dict = {}
        self._msg_cells_version = -1
        #: the machine's span tracer (duck-typed; see repro.obs), or None.
        #: Tracing is observational only — it never charges cycles.
        self.obs = machine.tracer
        #: span to parent the next *root* task's span under (set by the
        #: application layer around spawn so job → task trees link up)
        self.obs_root_parent = None
        self._task_spans: Dict[int, Any] = {}
        self.ctx_factory: Callable[["Runtime", TCB], Any] = SimpleContext
        #: optional observer called as hook(task_id, window, kind) for every
        #: window access; kind in {"read", "write", "accumulate"}
        self.window_hook: Optional[Callable[[int, Any, str], None]] = None

        ncl = machine.config.n_clusters
        self.heaps: List[Heap] = [
            Heap(
                machine.config.memory_words_per_cluster,
                shared_memory=machine.cluster(c).memory,
                tag="heap",
            )
            for c in range(ncl)
        ]
        self.code_stores: List[ClusterCodeStore] = [
            ClusterCodeStore(c, machine.cluster(c).memory) for c in range(ncl)
        ]
        self.ready: List[ReadyQueue] = [ReadyQueue(c) for c in range(ncl)]
        self.kernels: List[Kernel] = [Kernel(self, machine.cluster(c)) for c in range(ncl)]

        self.tasks: Dict[int, TCB] = {}
        self.root_results: Dict[int, Any] = {}
        # plain-int counters (not itertools.count) so snapshots can
        # capture and restore them exactly
        self._tid = 1
        self._call_id = 1
        self._rr = 0
        self._msg_id = 1
        #: record every value fed to task coroutines, enabling
        #: checkpoint/restore via deterministic replay (costs deepcopies,
        #: so it is opt-in — Fem2Program(journal=True) turns it on)
        self.journaling = False
        #: True only while journals are being replayed into recreated
        #: coroutines during restore; suppresses span emission
        self._replaying = False
        self._code_sent: set = set()  # (cluster, task_type) LOAD_CODE in flight
        self._awaiting_code: Dict[Tuple[int, str], List] = defaultdict(list)
        self._pending_rpc: Dict[int, int] = {}  # call_id -> caller tid
        #: where every issued tid lives (or will live once its INITIATE lands)
        self._task_home: Dict[int, int] = {}
        #: live (issued, not yet finished) tasks per cluster — the signal
        #: the least_loaded placement policy balances on
        self.cluster_load: List[int] = [0] * ncl
        #: mail/resumes that arrived before the task's INITIATE did
        self._early: Dict[int, Dict[str, Any]] = defaultdict(
            lambda: {"mail": [], "resume": False}
        )

    # -- program definition ---------------------------------------------------

    def define_task(
        self,
        task_type: str,
        body: Callable,
        code_words: int = 256,
        constants_words: int = 32,
        locals_words: int = 64,
    ) -> CodeBlock:
        """Register a task type (generator function) with the system."""
        return self.registry.define(
            CodeBlock(task_type, body, code_words, constants_words, locals_words)
        )

    def task(self, task_type: Optional[str] = None, **sizes) -> Callable:
        """Decorator form of :meth:`define_task`."""

        def wrap(fn: Callable) -> Callable:
            self.define_task(task_type or fn.__name__, fn, **sizes)
            return fn

        return wrap

    # -- task lifecycle ----------------------------------------------------------

    def spawn(
        self,
        task_type: str,
        *args: Any,
        cluster: Optional[int] = None,
        retain_data: bool = False,
    ) -> int:
        """Create a root task (no parent) directly at a cluster."""
        c = self._place(None) if cluster is None else cluster
        block = self.registry.get(task_type)
        self.code_stores[c].load(block)  # root code is pre-loaded
        tcb = self._create_task(task_type, args, c, parent=None, retain_data=retain_data)
        return tcb.tid

    def _create_task(
        self,
        task_type: str,
        args: Tuple[Any, ...],
        cluster: int,
        parent: Optional[int],
        retain_data: bool = False,
        tid: Optional[int] = None,
        rpc_reply_to: Optional[Tuple] = None,
    ) -> TCB:
        block = self.registry.get(task_type)
        record = allocate_record(
            self.heaps[cluster],
            tid if tid is not None else -1,
            task_type,
            cluster,
            args,
            locals_words=block.locals_words,
        )
        tcb = TCB(
            tid=tid if tid is not None else self._alloc_tid(),
            task_type=task_type,
            cluster=cluster,
            parent=parent,
            coro=None,
            record=record,
            retain_data=retain_data,
            rpc_reply_to=rpc_reply_to,
            created_at=self.machine.now,
        )
        record.task_id = tcb.tid
        ctx = self.ctx_factory(self, tcb)
        tcb.coro = block.body(ctx, *args)
        if not hasattr(tcb.coro, "send"):
            raise SysVMError(
                f"task type {task_type!r}: body must be a generator function"
            )
        self.tasks[tcb.tid] = tcb
        self._set_home(tcb.tid, cluster)
        if tcb.tid in self._early:
            early = self._early.pop(tcb.tid)
            tcb.mailbox.extend(early["mail"])
            tcb.pending_resume = early["resume"]
        self.metrics.incr("task.initiated")
        obs = self.obs
        if obs is not None and obs.enabled:
            pspan = (
                self._task_spans.get(parent)
                if parent is not None
                else self.obs_root_parent
            )
            span = obs.begin(
                "sysvm.task", task_type, self.machine.now, parent=pspan,
                tid=tcb.tid, cluster=cluster, parent_tid=parent,
            )
            self._task_spans[tcb.tid] = span
            obs.point(
                "sysvm.heap.alloc", task_type, self.machine.now, parent=span,
                words=record.size_words, cluster=cluster,
            )
        self.ready[cluster].push(tcb)
        self.kernels[cluster].kick()
        return tcb

    def span_of(self, tid: Optional[int]):
        """The open/closed span of a task, for causal parenting (or None)."""
        if tid is None:
            return None
        return self._task_spans.get(tid)

    def _alloc_tid(self) -> int:
        tid = self._tid
        self._tid += 1
        return tid

    def _alloc_call_id(self) -> int:
        cid = self._call_id
        self._call_id += 1
        return cid

    def _set_home(self, tid: int, cluster: int) -> None:
        if tid not in self._task_home:
            self._task_home[tid] = cluster
            self.cluster_load[cluster] += 1

    def requeue(self, tcb: TCB) -> None:
        """Put a picked-but-undispatchable task back on its ready queue."""
        self.ready[tcb.cluster].push(tcb)

    def start_on_pe(self, tcb: TCB, pe: ProcessingElement) -> None:
        """Kernel hand-off: begin or continue a task on a worker PE."""
        tcb.transition(TaskState.RUNNING)
        tcb.pe = pe
        if self.trace is not None:
            self.trace.record(
                self.machine.now, "dispatch", tid=tcb.tid,
                task_type=tcb.task_type, cluster=tcb.cluster, pe=pe.index,
            )
        if tcb.first_run_at is None:
            tcb.first_run_at = self.machine.now
            self.metrics.observe("task.start_latency", tcb.first_run_at - tcb.created_at)
        value, tcb.wake_value = tcb.wake_value, None
        if isinstance(value, RemoteFault):
            self._throw(tcb, SysVMError(f"remote call failed: {value.message}"))
            return
        self._step(tcb, value)

    # -- coroutine driving ---------------------------------------------------------

    def _step(self, tcb: TCB, value: Any) -> None:
        if self.journaling:
            tcb.journal.append(("send", copy.deepcopy(value)))
        try:
            effect = tcb.coro.send(value)
        except StopIteration as stop:
            self._finish(tcb, getattr(stop, "value", None))
            return
        except Exception as exc:  # task body raised
            self._fail(tcb, exc)
            return
        try:
            self._interpret(tcb, effect)
        except (SysVMError, RoutingError, MemoryCapacityError) as exc:
            # deliver system errors into the task body so it may handle them
            self._throw(tcb, exc)

    def _throw(self, tcb: TCB, exc: BaseException) -> None:
        if self.journaling:
            tcb.journal.append(("throw", exc))
        try:
            effect = tcb.coro.throw(exc)
        except StopIteration as stop:
            self._finish(tcb, getattr(stop, "value", None))
            return
        except Exception as exc2:
            self._fail(tcb, exc2)
            return
        self._interpret(tcb, effect)

    def _replay(self, tcb: TCB) -> None:
        """Recreate a live task's coroutine from the registered body and
        re-feed its journal, discarding the yielded effects — their
        consequences (heap, arrays, messages, metrics) are already part
        of the restored state.  Bodies must be deterministic functions of
        the journaled inputs, which is the safe-point contract documented
        in DESIGN.md."""
        block = self.registry.get(tcb.task_type)
        ctx = self.ctx_factory(self, tcb)
        tcb.coro = block.body(ctx, *tcb.record.params)
        self._replaying = True
        try:
            for op, value in tcb.journal:
                if op == "send":
                    tcb.coro.send(value)
                else:
                    tcb.coro.throw(value)
        finally:
            self._replaying = False

    def _burst(self, tcb: TCB, cycles: int, cont: Tuple) -> None:
        """Charge a PE burst; *cont* is a continuation descriptor (not a
        closure) stored on the TCB so checkpoints can serialize it."""
        tcb.cont = cont
        # bound method + TCB ride the completion event (no per-burst closure)
        tcb.pe.execute(cycles, self._continue, tcb)

    def _continue(self, tcb: TCB) -> None:
        """Dispatch the task's pending continuation descriptor.  This is
        the single completion path for every worker-PE burst."""
        cont, tcb.cont = tcb.cont, None
        tag = cont[0]
        if tag == "step":
            self._step(tcb, cont[1])
        elif tag == "send_rpc":
            _, dst, msg, call_id = cont
            self._send(tcb.cluster, dst, msg)
            self._block(tcb, ("rpc", call_id))
        elif tag == "send_initiate":
            _, messages, tids = cont
            for target, msg in messages:
                self._send(tcb.cluster, target, msg)
            self._step(tcb, list(tids))
        elif tag == "send_pause":
            if tcb.parent is not None:
                parent = self.tasks.get(tcb.parent)
                pcluster = parent.cluster if parent else tcb.cluster
                self._send(tcb.cluster, pcluster, pause_notify(tcb.tid, tcb.parent))
            tcb.transition(TaskState.PAUSED)
            tcb.pe = None
            self.metrics.incr("task.pauses")
            if tcb.pending_resume:
                tcb.pending_resume = False
                self._wake(tcb, None)
            self.kernels[tcb.cluster].kick()
        elif tag == "send_bcast":
            # call ids are allocated here, at completion time, so a
            # restored burst allocates the same ids the original would
            _, targets, value = cont
            for tid, home in targets:
                call_id = self._alloc_call_id()
                msg = remote_call(
                    "deliver_value", call_id, tcb.tid, target=tid, value=value
                )
                self._send(tcb.cluster, home, msg)
            self._step(tcb, None)
        elif tag == "send_resume":
            _, home, msg = cont
            self._send(tcb.cluster, home, msg)
            self._step(tcb, None)
        else:  # pragma: no cover - tags are exhaustive
            raise SysVMError(f"task {tcb.tid}: unknown continuation {tag!r}")

    def _block(self, tcb: TCB, waiting: Tuple) -> None:
        tcb.transition(TaskState.BLOCKED)
        tcb.waiting = waiting
        tcb.pe = None
        self.metrics.incr("task.blocks")
        self.kernels[tcb.cluster].kick()

    def _wake(self, tcb: TCB, value: Any) -> None:
        tcb.waiting = None
        tcb.wake_value = value
        tcb.transition(TaskState.READY)
        self.ready[tcb.cluster].push(tcb)
        self.kernels[tcb.cluster].kick()

    def _finish(self, tcb: TCB, result: Any) -> None:
        tcb.transition(TaskState.DONE)
        tcb.result = result
        tcb.finished_at = self.machine.now
        tcb.pe = None
        tcb.cont = None
        tcb.journal.clear()  # finished tasks are never replayed
        self.cluster_load[tcb.cluster] -= 1
        release_record(self.heaps[tcb.cluster], tcb.record)
        if not tcb.retain_data:
            self.data.drop_owned_by(tcb.tid)
        self.metrics.incr("task.completed")
        self.metrics.observe("task.turnaround", tcb.finished_at - tcb.created_at)
        if self.obs is not None and self.obs.enabled:
            self.obs.end(self._task_spans.get(tcb.tid), self.machine.now,
                         outcome="done")
        if self.trace is not None:
            self.trace.record(
                self.machine.now, "finish", tid=tcb.tid,
                task_type=tcb.task_type, cluster=tcb.cluster,
            )
        if tcb.rpc_reply_to is not None:
            rcluster, _rtask, call_id = tcb.rpc_reply_to
            self._send(tcb.cluster, rcluster, remote_return(call_id, result, _rtask))
        elif tcb.parent is not None:
            parent = self.tasks.get(tcb.parent)
            pcluster = parent.cluster if parent else tcb.cluster
            self._send(
                tcb.cluster, pcluster, terminate_notify(tcb.tid, tcb.parent, result)
            )
        else:
            self.root_results[tcb.tid] = result
        self.kernels[tcb.cluster].kick()

    def _fail(self, tcb: TCB, exc: BaseException) -> None:
        tcb.transition(TaskState.FAILED)
        tcb.error = exc
        tcb.finished_at = self.machine.now
        tcb.pe = None
        tcb.cont = None
        tcb.journal.clear()
        self.cluster_load[tcb.cluster] -= 1
        release_record(self.heaps[tcb.cluster], tcb.record)
        if not tcb.retain_data:
            self.data.drop_owned_by(tcb.tid)
        self.metrics.incr("task.failed")
        if self.obs is not None and self.obs.enabled:
            self.obs.end(self._task_spans.get(tcb.tid), self.machine.now,
                         outcome="failed", error=repr(exc))
        if self.strict:
            raise SysVMError(f"task {tcb.tid} ({tcb.task_type}) failed") from exc
        if tcb.parent is not None:
            parent = self.tasks.get(tcb.parent)
            pcluster = parent.cluster if parent else tcb.cluster
            self._send(
                tcb.cluster,
                pcluster,
                terminate_notify(tcb.tid, tcb.parent, ("__error__", repr(exc))),
            )
        else:
            self.root_results[tcb.tid] = ("__error__", repr(exc))
        self.kernels[tcb.cluster].kick()

    # -- message plumbing -------------------------------------------------------------

    def _send(self, src: int, dst: int, msg: Message, extra_delay: int = 0) -> None:
        # stamp the wire id from OS state, not the construction-time
        # default: ids must be a function of this run's own history so a
        # mid-run checkpoint (which pickles in-flight messages) is
        # byte-identical across host processes
        msg.msg_id = self._msg_id
        self._msg_id += 1
        encode(msg, src, dst)
        # per-kind counter cells, cached so the hot path does one dict
        # probe on the enum instead of building two f-strings per message
        m = self.metrics
        if self._msg_cells_version != m.version:
            self._msg_cells = {}
            self._msg_cells_version = m.version
        cells = self._msg_cells.get(msg.kind)
        if cells is None:
            kind = msg.kind.value
            cells = self._msg_cells[msg.kind] = (
                m.counter(f"comm.messages.{kind}"),
                m.counter(f"comm.message_words.{kind}"),
            )
        cells[0].value += 1
        cells[1].value += msg.size_words
        if self.obs is not None and self.obs.enabled:
            self.obs.point(
                f"sysvm.msg.{msg.kind.value}", msg.kind.value, self.machine.now,
                parent=self._task_spans.get(msg.src_task),
                src=src, dst=dst, words=msg.size_words,
            )
        if self.trace is not None:
            self.trace.record(
                self.machine.now, "send", msg_kind=msg.kind.value,
                src=src, dst=dst, words=msg.size_words,
            )
        self.machine.deliver(src, dst, msg.size_words, msg, extra_delay=extra_delay)

    def handle_message(self, cluster_id: int, msg: Message) -> None:
        """Kernel upcall: decode and execute one message."""
        payload = decode(msg)
        kind = msg.kind
        if self.obs is not None and self.obs.enabled:
            self.obs.point(
                "sysvm.decode", kind.value, self.machine.now,
                parent=self._task_spans.get(msg.src_task),
                cluster=cluster_id, words=msg.size_words,
            )
        if kind is MsgKind.INITIATE_TASK:
            self._handle_initiate(cluster_id, payload)
        elif kind is MsgKind.PAUSE_NOTIFY:
            self._handle_pause_notify(payload)
        elif kind is MsgKind.RESUME_TASK:
            self._handle_resume(payload)
        elif kind is MsgKind.TERMINATE_NOTIFY:
            self._handle_terminate_notify(payload)
        elif kind is MsgKind.REMOTE_CALL:
            self._handle_remote_call(cluster_id, msg, payload)
        elif kind is MsgKind.REMOTE_RETURN:
            self._handle_remote_return(payload)
        elif kind is MsgKind.LOAD_CODE:
            self._handle_load_code(cluster_id, payload)
        else:  # pragma: no cover - MsgKind is exhaustive
            raise MessageError(f"unhandled message kind {kind}")

    def _handle_initiate(self, cluster_id: int, payload: Dict) -> None:
        task_type = payload["task_type"]
        if not self.code_stores[cluster_id].is_resident(task_type):
            # "find code for task" failed: park until the code block arrives
            self._awaiting_code[(cluster_id, task_type)].append(("initiate", payload))
            return
        args = tuple(payload["args"])
        for tid, index in zip(payload["tids"], payload["indices"]):
            task_args = args + (index,) if payload.get("index_arg") else args
            self._create_task(
                task_type,
                task_args,
                cluster_id,
                parent=payload.get("parent"),
                retain_data=payload.get("retain", False),
                tid=tid,
            )

    def _handle_pause_notify(self, payload: Dict) -> None:
        child = payload["child"]
        child_tcb = self.tasks.get(child)
        parent = self.tasks.get(child_tcb.parent) if child_tcb else None
        if parent is None:
            return
        parent.pause_events.add(child)
        if parent.waiting == ("pause_of", child):
            parent.pause_events.discard(child)
            self._wake(parent, None)

    def _handle_resume(self, payload: Dict) -> None:
        child = payload["child"]
        tcb = self.tasks.get(child)
        if tcb is None:
            if child in self._task_home:
                self._early[child]["resume"] = True
            return
        if not tcb.is_live():
            return
        if tcb.state is TaskState.PAUSED:
            self._wake(tcb, None)
        else:
            # resume raced ahead of the pause: honour it when the pause lands
            tcb.pending_resume = True

    def _handle_terminate_notify(self, payload: Dict) -> None:
        child, result = payload["child"], payload["result"]
        child_tcb = self.tasks.get(child)
        parent = self.tasks.get(child_tcb.parent) if child_tcb else None
        if parent is None or not parent.is_live():
            return
        parent.children.discard(child)
        parent.child_results[child] = result
        if parent.waiting and parent.waiting[0] == "children":
            wanted = parent.waiting[1]
            if wanted.issubset(parent.child_results.keys()):
                results = {t: parent.child_results.pop(t) for t in wanted}
                self._wake(parent, results)

    def _handle_remote_call(self, cluster_id: int, msg: Message, payload: Dict) -> None:
        service = payload["service"]
        call_id = payload["call_id"]
        cfg = self.machine.config
        if service == "window_read":
            window = payload["window"]
            try:
                arr = self.data.raw(window.handle)
                value = window.read_from(arr)
                copy_cost = cfg.word_touch_cycles * window.words
            except SysVMError as exc:
                value = RemoteFault(str(exc))
                copy_cost = 0
            self._send(
                cluster_id,
                msg.src_cluster,
                remote_return(call_id, value, msg.src_task),
                extra_delay=copy_cost,
            )
        elif service == "window_write":
            window = payload["window"]
            try:
                arr = self.data.raw(window.handle)
                window.write_to(arr, payload["data"],
                                accumulate=payload.get("accumulate", False))
                value = None
                copy_cost = cfg.word_touch_cycles * window.words
            except SysVMError as exc:
                value = RemoteFault(str(exc))
                copy_cost = 0
            self._send(
                cluster_id,
                msg.src_cluster,
                remote_return(call_id, value, msg.src_task),
                extra_delay=copy_cost,
            )
        elif service == "deliver_value":
            target_tid = payload["target"]
            tcb = self.tasks.get(target_tid)
            if tcb is None:
                if target_tid in self._task_home:
                    # the target's INITIATE is still in flight: park the value
                    self._early[target_tid]["mail"].append(payload["value"])
                return
            if not tcb.is_live():
                return
            tcb.mailbox.append(payload["value"])
            if tcb.waiting == ("receive",):
                self._wake(tcb, tcb.mailbox.popleft())
        elif service == "proc":
            if not self.code_stores[cluster_id].is_resident(payload["proc"]):
                self._awaiting_code[(cluster_id, payload["proc"])].append(
                    ("proc", msg, payload)
                )
                return
            self._create_task(
                payload["proc"],
                tuple(payload["args"]),
                cluster_id,
                parent=None,
                rpc_reply_to=(msg.src_cluster, msg.src_task, call_id),
            )
        else:
            raise MessageError(f"unknown remote-call service {service!r}")

    def _handle_remote_return(self, payload: Dict) -> None:
        call_id = payload["call_id"]
        caller = self._pending_rpc.pop(call_id, None)
        if caller is None:
            raise MessageError(f"remote return for unknown call {call_id}")
        tcb = self.tasks[caller]
        if tcb.waiting == ("rpc", call_id):
            self._wake(tcb, payload["result"])
        else:  # pragma: no cover - callers always block on the call
            raise SchedulingError(f"task {caller} not waiting on call {call_id}")

    def _handle_load_code(self, cluster_id: int, payload: Dict) -> None:
        task_type = payload["task_type"]
        self.code_stores[cluster_id].load(self.registry.get(task_type))
        parked = self._awaiting_code.pop((cluster_id, task_type), [])
        for entry in parked:
            if entry[0] == "initiate":
                self._handle_initiate(cluster_id, entry[1])
            else:
                _tag, parked_msg, parked_payload = entry
                self._handle_remote_call(cluster_id, parked_msg, parked_payload)

    # -- effect interpretation ------------------------------------------------------

    def _interpret(self, tcb: TCB, effect: Any) -> None:
        cfg = self.machine.config
        if isinstance(effect, fx.Compute):
            if effect.flops:
                self.metrics.incr("proc.flops", effect.flops)
            self._burst(tcb, effect.cycles, ("step", None))
        elif isinstance(effect, fx.CreateArray):
            arr = np.array(effect.data, copy=True)
            handle = self.data.register(arr, tcb.cluster, owner_task=tcb.tid)
            cost = cfg.word_touch_cycles * int(arr.size)
            self._burst(tcb, cost, ("step", handle))
        elif isinstance(effect, fx.FreeArray):
            if effect.handle.owner_task != tcb.tid:
                raise SysVMError(
                    f"task {tcb.tid} freeing array owned by task "
                    f"{effect.handle.owner_task}"
                )
            self.data.drop(effect.handle)
            self._burst(tcb, 1, ("step", None))
        elif isinstance(effect, fx.ReadWindow):
            self._do_window_read(tcb, effect.window)
        elif isinstance(effect, fx.WriteWindow):
            self._do_window_write(tcb, effect.window, effect.data, effect.accumulate)
        elif isinstance(effect, fx.Initiate):
            self._do_initiate(tcb, effect)
        elif isinstance(effect, fx.WaitChildren):
            self._do_wait_children(tcb, tuple(effect.tids))
        elif isinstance(effect, fx.WaitPause):
            if effect.tid in tcb.pause_events:
                tcb.pause_events.discard(effect.tid)
                self._burst(tcb, 1, ("step", None))
            else:
                self._block(tcb, ("pause_of", effect.tid))
        elif isinstance(effect, fx.Pause):
            self._do_pause(tcb)
        elif isinstance(effect, fx.ResumeChild):
            home = self._task_home.get(effect.tid)
            if home is None:
                raise SysVMError(f"resume of unknown task {effect.tid}")
            msg = resume_task(effect.tid, tcb.tid)
            self._burst(tcb, cfg.message_fixed_cycles, ("send_resume", home, msg))
        elif isinstance(effect, fx.Broadcast):
            self._do_broadcast(tcb, tuple(effect.tids), effect.value)
        elif isinstance(effect, fx.Receive):
            if tcb.mailbox:
                value = tcb.mailbox.popleft()
                self._burst(tcb, 1, ("step", value))
            else:
                self._block(tcb, ("receive",))
        elif isinstance(effect, fx.RemoteCall):
            self._do_remote_call(tcb, effect)
        else:
            raise SysVMError(
                f"task {tcb.tid} yielded a non-effect: {effect!r}"
            )

    # -- effect helpers ---------------------------------------------------------------

    def _do_window_read(self, tcb: TCB, window) -> None:
        cfg = self.machine.config
        if self.window_hook is not None:
            self.window_hook(tcb.tid, window, "read")
        owner_cluster = window.handle.cluster
        if owner_cluster == tcb.cluster:
            value = window.read_from(self.data.raw(window.handle))
            cost = cfg.word_touch_cycles * window.words
            self.metrics.incr("win.local_reads")
            self._burst(tcb, cost, ("step", value))
        else:
            self.metrics.incr("win.remote_reads")
            call_id = self._alloc_call_id()
            msg = remote_call("window_read", call_id, tcb.tid, window=window)
            self._pending_rpc[call_id] = tcb.tid
            self._burst(
                tcb, cfg.message_fixed_cycles,
                ("send_rpc", owner_cluster, msg, call_id),
            )

    def _do_window_write(self, tcb: TCB, window, data, accumulate: bool) -> None:
        cfg = self.machine.config
        if self.window_hook is not None:
            self.window_hook(tcb.tid, window, "accumulate" if accumulate else "write")
        owner_cluster = window.handle.cluster
        data = np.asarray(data)
        if owner_cluster == tcb.cluster:
            window.write_to(self.data.raw(window.handle), data, accumulate=accumulate)
            cost = cfg.word_touch_cycles * window.words
            self.metrics.incr("win.local_writes")
            self._burst(tcb, cost, ("step", None))
        else:
            self.metrics.incr("win.remote_writes")
            call_id = self._alloc_call_id()
            msg = remote_call(
                "window_write", call_id, tcb.tid,
                window=window, data=data, accumulate=accumulate,
            )
            self._pending_rpc[call_id] = tcb.tid
            self._burst(
                tcb, cfg.message_fixed_cycles,
                ("send_rpc", owner_cluster, msg, call_id),
            )

    def _do_initiate(self, tcb: TCB, effect: fx.Initiate) -> None:
        cfg = self.machine.config
        block = self.registry.get(effect.task_type)  # validates the type
        tids = [self._alloc_tid() for _ in range(effect.count)]
        # group replications by target cluster
        by_cluster: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for index, tid in enumerate(tids):
            target = effect.cluster if effect.cluster is not None else self._place(tcb.cluster)
            by_cluster[target].append((tid, index))
            self._set_home(tid, target)
        tcb.children.update(tids)
        messages: List[Tuple[int, Message]] = []
        for target, pairs in sorted(by_cluster.items()):
            if (
                not self.code_stores[target].is_resident(effect.task_type)
                and (target, effect.task_type) not in self._code_sent
            ):
                self._code_sent.add((target, effect.task_type))
                messages.append((target, load_code(effect.task_type, block.load_words)))
            msg = initiate_task(effect.task_type, len(pairs), effect.args, tcb.tid)
            msg.payload["tids"] = [p[0] for p in pairs]
            msg.payload["indices"] = [p[1] for p in pairs]
            msg.payload["index_arg"] = effect.index_arg
            msg.payload["parent"] = tcb.tid
            messages.append((target, msg))
        format_cost = cfg.message_fixed_cycles * len(messages)
        self._burst(tcb, format_cost, ("send_initiate", messages, tids))

    def _do_wait_children(self, tcb: TCB, tids: Tuple[int, ...]) -> None:
        have = set(tcb.child_results.keys())
        wanted = set(tids)
        if wanted.issubset(have):
            results = {t: tcb.child_results.pop(t) for t in wanted}
            self._burst(tcb, 1, ("step", results))
        else:
            self._block(tcb, ("children", frozenset(wanted)))

    def _do_pause(self, tcb: TCB) -> None:
        cfg = self.machine.config
        self._burst(tcb, cfg.message_fixed_cycles, ("send_pause",))

    def _do_broadcast(self, tcb: TCB, tids: Tuple[int, ...], value: Any) -> None:
        cfg = self.machine.config
        targets = []
        for tid in tids:
            home = self._task_home.get(tid)
            if home is None:
                raise SysVMError(f"broadcast to unknown task {tid}")
            targets.append((tid, home))
        self.metrics.incr("comm.broadcasts")
        self._burst(
            tcb, cfg.message_fixed_cycles * max(1, len(targets)),
            ("send_bcast", targets, value),
        )

    def _do_remote_call(self, tcb: TCB, effect: fx.RemoteCall) -> None:
        cfg = self.machine.config
        self.registry.get(effect.proc)  # validates
        target = effect.cluster
        if target is None:
            # "location determined by location of data visible in a window"
            for arg in effect.args:
                handle = getattr(arg, "handle", None)
                if handle is not None:
                    target = handle.cluster
                    break
        if target is None:
            raise SysVMError(
                "remote call needs an explicit cluster or a window argument"
            )
        if not self.code_stores[target].is_resident(effect.proc):
            block = self.registry.get(effect.proc)
            if (target, effect.proc) not in self._code_sent:
                self._code_sent.add((target, effect.proc))
                self._send(tcb.cluster, target, load_code(effect.proc, block.load_words))
        call_id = self._alloc_call_id()
        msg = remote_call("proc", call_id, tcb.tid, proc=effect.proc, args=effect.args)
        self._pending_rpc[call_id] = tcb.tid
        self._burst(tcb, cfg.message_fixed_cycles, ("send_rpc", target, msg, call_id))

    # -- fault recovery -----------------------------------------------------------------

    def recover_pe_failure(self, pe: ProcessingElement) -> None:
        """Reconfiguration after a worker-PE fault: the task that was
        running on it lost its in-flight work and is *restarted from the
        beginning* on the surviving PEs.

        Restart-from-start is the recovery model of the original FEM task
        farm: tasks are assumed idempotent.  Tasks that externalize state
        mid-run (window writes before termination) are not restart-safe;
        the fault experiments use compute-and-return tasks.
        """
        victims = [
            t for t in self.tasks.values()
            if t.pe is pe and t.state is TaskState.RUNNING
        ]
        for tcb in victims:
            block = self.registry.get(tcb.task_type)
            self.data.drop_owned_by(tcb.tid)  # recreated on restart
            tcb.coro.close()
            ctx = self.ctx_factory(self, tcb)
            tcb.coro = block.body(ctx, *tcb.record.params)
            tcb.pe = None
            tcb.waiting = None
            tcb.wake_value = None
            tcb.cont = None
            tcb.journal.clear()  # the restart begins a fresh history
            tcb.transition(TaskState.READY)
            self.metrics.incr("fault.task_restarts")
            self.ready[tcb.cluster].push(tcb)
            self.kernels[tcb.cluster].kick()

    def recover_cluster_failure(
        self, cluster_id: int, dropped: Sequence = ()
    ) -> None:
        """A whole cluster is gone: its tasks (and their data) are lost.

        Parents waiting on lost children are woken with an error result —
        the system "detects" the failure rather than deadlocking.  Beyond
        the cluster's resident tasks, two more populations must be
        reported: tasks whose INITIATE was sitting in the dead cluster's
        input queue (*dropped*, captured by the fault injector before the
        queue was cleared) and tasks whose INITIATE is still traversing
        the network toward the dead cluster (``machine.in_flight()``).
        """
        lost = [
            t for t in self.tasks.values()
            if t.cluster == cluster_id and t.is_live()
        ]
        for tcb in lost:
            if tcb.coro is not None:
                tcb.coro.close()
            tcb.state = TaskState.FAILED  # direct: heap/records died with the cluster
            tcb.error = RoutingError(f"cluster {cluster_id} failed")
            tcb.pe = None
            tcb.cont = None
            tcb.journal.clear()
            self.cluster_load[tcb.cluster] -= 1
            self.metrics.incr("fault.tasks_lost")
            result = ("__error__", f"lost to cluster {cluster_id} failure")
            if tcb.rpc_reply_to is not None:
                rcluster, rtask, call_id = tcb.rpc_reply_to
                caller = self._pending_rpc.pop(call_id, None)
                if caller is not None:
                    waiter = self.tasks.get(caller)
                    if waiter is not None and waiter.waiting == ("rpc", call_id):
                        self._wake(waiter, result)
            elif tcb.parent is not None:
                self._report_lost_child(tcb.tid, tcb.parent, result)
            else:
                self.root_results[tcb.tid] = result
        # INITIATEs that never ran: queued at the cluster when it died,
        # or still in flight toward it
        doomed = list(dropped)
        doomed.extend(
            p for dst, p in self.machine.in_flight() if dst == cluster_id
        )
        for msg in doomed:
            if not isinstance(msg, Message) or msg.kind is not MsgKind.INITIATE_TASK:
                continue
            payload = msg.payload
            result = ("__error__", f"lost to cluster {cluster_id} failure")
            for tid in payload.get("tids", []):
                if tid in self.tasks:
                    continue  # the task exists somewhere; not this message's loss
                self.metrics.incr("fault.tasks_lost")
                home = self._task_home.get(tid)
                if home is not None:
                    self.cluster_load[home] -= 1
                parent_tid = payload.get("parent")
                if parent_tid is not None:
                    self._report_lost_child(tid, parent_tid, result)
                else:
                    self.root_results[tid] = result

    def _report_lost_child(self, tid: int, parent_tid: int, result: Any) -> None:
        """Record a lost child's error result with its parent, waking the
        parent if this completes the set it was waiting on."""
        parent = self.tasks.get(parent_tid)
        if parent is None or not parent.is_live():
            return
        parent.children.discard(tid)
        parent.child_results[tid] = result
        if parent.waiting and parent.waiting[0] == "children":
            wanted = parent.waiting[1]
            if wanted.issubset(parent.child_results.keys()):
                results = {t: parent.child_results.pop(t) for t in wanted}
                self._wake(parent, results)

    # -- placement ---------------------------------------------------------------------

    def _place(self, parent_cluster: Optional[int]) -> int:
        live = [c.cluster_id for c in self.machine.live_clusters()]
        if not live:
            raise SchedulingError("no live clusters to place task on")
        if self.placement == "local" and parent_cluster in live:
            return parent_cluster
        if self.placement == "least_loaded":
            return min(
                live, key=lambda c: (self.cluster_load[c], len(self.ready[c]), c)
            )
        # round robin over live clusters
        self._rr = (self._rr + 1) % len(live)
        return live[self._rr]

    # -- running ------------------------------------------------------------------------

    def run(self, max_events: int = 5_000_000) -> Dict[int, Any]:
        """Run the machine to quiescence; returns root-task results.

        Raises :class:`SchedulingError` with a diagnosis if tasks remain
        live after the event queue drains (deadlock or lost wakeup).
        A halted engine (fault recovery pending) returns the results so
        far without the stuck-task check — the recovery driver decides
        how to resume.
        """
        self.machine.run_to_completion(max_events=max_events)
        if self.machine.engine.halted:
            return dict(self.root_results)
        stuck = [t for t in self.tasks.values() if t.is_live()]
        if stuck:
            detail = ", ".join(
                f"task {t.tid}({t.task_type}) {t.state.value} waiting={t.waiting}"
                for t in stuck[:8]
            )
            raise SchedulingError(f"{len(stuck)} tasks never completed: {detail}")
        return dict(self.root_results)

    def result_of(self, tid: int) -> Any:
        if tid in self.root_results:
            return self.root_results[tid]
        tcb = self.tasks.get(tid)
        if tcb is None:
            raise SysVMError(f"unknown task {tid}")
        if tcb.state is not TaskState.DONE:
            raise SysVMError(f"task {tid} has not completed ({tcb.state.value})")
        return tcb.result

    def live_task_count(self) -> int:
        return sum(1 for t in self.tasks.values() if t.is_live())

    # -- checkpoint/restore --------------------------------------------------------------

    def snapshot(self) -> Dict:
        """Every piece of OS state as plain data.  Requires journaling —
        task coroutines cannot be serialized, so restore recreates them
        from the registered bodies and replays the journals.

        Worker-PE bursts in flight are captured as (tid, end time, seq,
        cycles); the continuation each one completes into is already on
        the TCB (``cont``).  The registry and task bodies are *not*
        serialized — restore targets a freshly built program that has
        re-registered the same types.
        """
        if not self.journaling:
            raise CkptError(
                "runtime journaling is off; build the program with "
                "journal=True to make it checkpointable"
            )
        bursts = []
        for tcb in self.tasks.values():
            if tcb.state is TaskState.RUNNING and tcb.pe is not None:
                ev = tcb.pe._burst_event
                if ev is not None:
                    bursts.append((tcb.tid, ev.time, ev.seq, ev.args[0]))
        return {
            "tid": self._tid,
            "call_id": self._call_id,
            "rr": self._rr,
            "msg_id": self._msg_id,
            "data": self.data.snapshot(),
            "heaps": [h.snapshot() for h in self.heaps],
            "code_stores": [cs.snapshot() for cs in self.code_stores],
            "tasks": [t.snapshot() for t in self.tasks.values()],
            "root_results": dict(self.root_results),
            "code_sent": sorted(self._code_sent),
            "awaiting_code": [
                (k, list(v)) for k, v in sorted(self._awaiting_code.items())
            ],
            "pending_rpc": dict(self._pending_rpc),
            "task_home": dict(self._task_home),
            "cluster_load": list(self.cluster_load),
            "early": {
                tid: {"mail": list(e["mail"]), "resume": e["resume"]}
                for tid, e in self._early.items()
            },
            "ready": [[t.tid for t in rq] for rq in self.ready],
            "kernels": [k.snapshot() for k in self.kernels],
            "bursts": sorted(bursts, key=lambda b: (b[1], b[2])),
        }

    def restore(self, state: Dict, pending: List) -> None:
        """Install OS state into this (freshly built) runtime.  Burst and
        kernel completions are appended to *pending* as (time, seq,
        thunk); the coordinator re-schedules them in original order."""
        if not self.journaling:
            raise CkptError("cannot restore into a runtime without journaling")
        self._tid = state["tid"]
        self._call_id = state["call_id"]
        self._rr = state["rr"]
        self._msg_id = state["msg_id"]
        self.data.restore(state["data"])
        for heap, hstate in zip(self.heaps, state["heaps"]):
            heap.restore(hstate)
        for store, cstate in zip(self.code_stores, state["code_stores"]):
            store.restore(cstate)
        self.root_results = dict(state["root_results"])
        self._code_sent = {tuple(k) for k in state["code_sent"]}
        self._awaiting_code = defaultdict(list)
        for key, entries in state["awaiting_code"]:
            self._awaiting_code[tuple(key)] = list(entries)
        self._pending_rpc = dict(state["pending_rpc"])
        self._task_home = dict(state["task_home"])
        self.cluster_load = list(state["cluster_load"])
        self._early = defaultdict(lambda: {"mail": [], "resume": False})
        for tid, entry in state["early"].items():
            self._early[tid] = {"mail": list(entry["mail"]), "resume": entry["resume"]}
        self.tasks = {}
        self._task_spans = {}
        for tstate in state["tasks"]:
            tcb = self._restore_task(tstate)
            self.tasks[tcb.tid] = tcb
        # recreate coroutines of live tasks by replaying their journals
        for tcb in self.tasks.values():
            if tcb.is_live():
                self._replay(tcb)
        for rq, tids in zip(self.ready, state["ready"]):
            rq._queue = deque(self.tasks[t] for t in tids)
        # kernels reference TCBs, so tasks had to come first
        for kernel, kstate in zip(self.kernels, state["kernels"]):
            kernel.restore(kstate, pending)
        for tid, end_time, seq, cycles in state["bursts"]:
            tcb = self.tasks[tid]
            pending.append((
                end_time, seq,
                lambda t=tcb, c=cycles, e=end_time: t.pe.resume_burst(
                    c, e, self._continue, t
                ),
            ))

    def _restore_task(self, s: Dict) -> TCB:
        rec = s["record"]
        record = ActivationRecord(
            task_id=rec["task_id"],
            task_type=rec["task_type"],
            cluster=rec["cluster"],
            heap_addr=rec["heap_addr"],
            size_words=rec["size_words"],
            params=rec["params"],
            locals=dict(rec["locals"]),
            released=rec["released"],
        )
        tcb = TCB(
            tid=s["tid"],
            task_type=s["task_type"],
            cluster=s["cluster"],
            parent=s["parent"],
            coro=None,
            record=record,
        )
        tcb.restore(s)
        tcb.pe = (
            self.machine.cluster(tcb.cluster).pes[s["pe_index"]]
            if s["pe_index"] is not None
            else None
        )
        # reopen a fresh span for live tasks so post-restore activity has
        # a home; the original parent link is lost across the restore
        if tcb.is_live() and self.obs is not None and self.obs.enabled:
            self._task_spans[tcb.tid] = self.obs.begin(
                "sysvm.task", tcb.task_type, self.machine.now,
                parent=self.obs_root_parent, tid=tcb.tid, cluster=tcb.cluster,
                restored=True,
            )
        return tcb
