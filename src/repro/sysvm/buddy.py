"""Binary buddy allocator: the fixed-split alternative to the paper's
variable-size-block heap.

Round every request up to a power of two; split larger blocks in
halves, merge freed buddies back.  Allocation and free are O(log n)
with no scanning, at the price of *internal* fragmentation (the
round-up waste).  Experiment E8's ablation compares it against
first-fit and best-fit on the same trace.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import HeapError


def _next_pow2(x: int) -> int:
    return 1 << (x - 1).bit_length()


class BuddyHeap:
    """Power-of-two buddy allocator over ``[0, capacity)`` words."""

    def __init__(self, capacity: int, min_block: int = 16,
                 shared_memory=None, tag: str = "heap") -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise HeapError(f"buddy heap capacity must be a power of two, got {capacity}")
        if min_block <= 0 or min_block & (min_block - 1) or min_block > capacity:
            raise HeapError(f"bad min_block {min_block}")
        self.capacity = capacity
        self.min_block = min_block
        self.shared_memory = shared_memory
        self.tag = tag
        self.max_order = (capacity // min_block).bit_length() - 1
        #: free lists per order: order o holds blocks of min_block * 2^o
        self._free: List[Set[int]] = [set() for _ in range(self.max_order + 1)]
        self._free[self.max_order].add(0)
        #: addr -> (order, requested_size)
        self._allocated: Dict[int, tuple] = {}
        self.alloc_count = 0
        self.free_count = 0
        self.failed_allocs = 0
        self.split_count = 0
        self.merge_count = 0

    def _order_for(self, size: int) -> int:
        block = max(self.min_block, _next_pow2(size))
        order = (block // self.min_block).bit_length() - 1
        if order > self.max_order:
            raise HeapError(f"request of {size} words exceeds capacity {self.capacity}")
        return order

    def _block_size(self, order: int) -> int:
        return self.min_block << order

    # -- allocation -------------------------------------------------------

    def alloc(self, size: int) -> int:
        if size <= 0:
            raise HeapError(f"allocation size must be positive, got {size}")
        order = self._order_for(size)
        # find the smallest order with a free block
        o = order
        while o <= self.max_order and not self._free[o]:
            o += 1
        if o > self.max_order:
            self.failed_allocs += 1
            raise HeapError(
                f"out of memory: {size} words requested "
                f"({self.used_words()}/{self.capacity} used)"
            )
        addr = min(self._free[o])
        self._free[o].discard(addr)
        while o > order:  # split down
            o -= 1
            self.split_count += 1
            buddy = addr + self._block_size(o)
            self._free[o].add(buddy)
        self._allocated[addr] = (order, size)
        self.alloc_count += 1
        if self.shared_memory is not None:
            self.shared_memory.reserve(self._block_size(order), tag=self.tag)
        return addr

    def free(self, addr: int) -> None:
        entry = self._allocated.pop(addr, None)
        if entry is None:
            raise HeapError(f"free of unallocated address {addr}")
        order, _size = entry
        self.free_count += 1
        if self.shared_memory is not None:
            self.shared_memory.release(self._block_size(order), tag=self.tag)
        # merge with buddies as far as possible
        while order < self.max_order:
            buddy = addr ^ self._block_size(order)
            if buddy not in self._free[order]:
                break
            self._free[order].discard(buddy)
            addr = min(addr, buddy)
            order += 1
            self.merge_count += 1
        self._free[order].add(addr)

    def block_size(self, addr: int) -> int:
        entry = self._allocated.get(addr)
        if entry is None:
            raise HeapError(f"address {addr} is not allocated")
        return self._block_size(entry[0])

    # -- statistics -----------------------------------------------------------

    def used_words(self) -> int:
        """Words actually held (block sizes, including round-up waste)."""
        return sum(self._block_size(o) for o, _ in self._allocated.values())

    def requested_words(self) -> int:
        return sum(size for _, size in self._allocated.values())

    def internal_fragmentation(self) -> float:
        """Fraction of held words wasted by power-of-two round-up."""
        used = self.used_words()
        if used == 0:
            return 0.0
        return 1.0 - self.requested_words() / used

    def free_words(self) -> int:
        return self.capacity - self.used_words()

    def largest_free(self) -> int:
        for o in range(self.max_order, -1, -1):
            if self._free[o]:
                return self._block_size(o)
        return 0

    def external_fragmentation(self) -> float:
        free = self.free_words()
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free() / free

    def check_invariants(self) -> None:
        """Free blocks and allocated blocks tile the arena disjointly;
        no free block has its buddy also free at the same order."""
        covered = []
        for o, frees in enumerate(self._free):
            size = self._block_size(o)
            for addr in frees:
                if addr % size != 0:
                    raise HeapError(f"misaligned free block {addr} at order {o}")
                buddy = addr ^ size
                if o < self.max_order and buddy in frees:
                    raise HeapError(f"unmerged buddies {addr}/{buddy} at order {o}")
                covered.append((addr, size))
        for addr, (o, _) in self._allocated.items():
            covered.append((addr, self._block_size(o)))
        covered.sort()
        pos = 0
        for addr, size in covered:
            if addr != pos:
                raise HeapError(f"gap or overlap at address {pos} (next block {addr})")
            pos += size
        if pos != self.capacity:
            raise HeapError(f"arena covers {pos} of {self.capacity} words")

    def stats(self) -> Dict[str, float]:
        return {
            "capacity": self.capacity,
            "used": self.used_words(),
            "requested": self.requested_words(),
            "free": self.free_words(),
            "largest_free": self.largest_free(),
            "internal_fragmentation": self.internal_fragmentation(),
            "external_fragmentation": self.external_fragmentation(),
            "allocs": self.alloc_count,
            "frees": self.free_count,
            "failed_allocs": self.failed_allocs,
            "splits": self.split_count,
            "merges": self.merge_count,
        }
