"""The general heap with variable-size blocks.

The system programmer's VM storage management is "general heap with
variable size blocks".  This is a boundary-tag style allocator over a
single address range: allocation by first-fit or best-fit, freeing with
immediate coalescing of adjacent free blocks, and the fragmentation
statistics experiment E8 reports.

The heap optionally mirrors its allocations into a cluster's
:class:`~repro.hardware.memory.SharedMemory` so heap usage shows up in
the machine-wide storage accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional

from ..errors import HeapError

Policy = Literal["first_fit", "best_fit"]


@dataclass
class Block:
    addr: int
    size: int
    free: bool


class Heap:
    """A variable-size block allocator over ``[0, capacity)`` words."""

    def __init__(
        self,
        capacity: int,
        policy: Policy = "first_fit",
        shared_memory=None,
        tag: str = "heap",
    ) -> None:
        if capacity <= 0:
            raise HeapError(f"heap capacity must be positive, got {capacity}")
        if policy not in ("first_fit", "best_fit"):
            raise HeapError(f"unknown policy {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self.shared_memory = shared_memory
        self.tag = tag
        # blocks kept sorted by address; adjacent free blocks are always
        # coalesced, so the list is the canonical boundary-tag walk
        self._blocks: List[Block] = [Block(0, capacity, free=True)]
        self._allocated: Dict[int, Block] = {}
        # statistics
        self.alloc_count = 0
        self.free_count = 0
        self.failed_allocs = 0
        self.scan_steps = 0  # blocks inspected across all allocations

    # -- allocation ------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Allocate *size* words; returns the block address.

        Raises :class:`HeapError` when no free block is large enough —
        note this can happen from fragmentation even when total free
        space would suffice.
        """
        if size <= 0:
            raise HeapError(f"allocation size must be positive, got {size}")
        idx = self._find(size)
        if idx is None:
            self.failed_allocs += 1
            raise HeapError(
                f"out of memory: {size} words requested, largest free block "
                f"is {self.largest_free()} ({self.free_words()} free in total)"
            )
        block = self._blocks[idx]
        if block.size > size:
            # split: the tail stays free
            tail = Block(block.addr + size, block.size - size, free=True)
            self._blocks.insert(idx + 1, tail)
            block.size = size
        block.free = False
        self._allocated[block.addr] = block
        self.alloc_count += 1
        if self.shared_memory is not None:
            self.shared_memory.reserve(size, tag=self.tag)
        return block.addr

    def _find(self, size: int) -> Optional[int]:
        best_idx: Optional[int] = None
        best_size = None
        for i, b in enumerate(self._blocks):
            self.scan_steps += 1
            if not b.free or b.size < size:
                continue
            if self.policy == "first_fit":
                return i
            if best_size is None or b.size < best_size:
                best_idx, best_size = i, b.size
                if best_size == size:
                    break  # exact fit cannot be beaten
        return best_idx

    def free(self, addr: int) -> None:
        """Free the block at *addr*, coalescing with free neighbours."""
        block = self._allocated.pop(addr, None)
        if block is None:
            raise HeapError(f"free of unallocated address {addr}")
        block.free = True
        self.free_count += 1
        if self.shared_memory is not None:
            self.shared_memory.release(block.size, tag=self.tag)
        idx = self._blocks.index(block)
        # coalesce with successor first so indices stay valid
        if idx + 1 < len(self._blocks) and self._blocks[idx + 1].free:
            nxt = self._blocks.pop(idx + 1)
            block.size += nxt.size
        if idx > 0 and self._blocks[idx - 1].free:
            prev = self._blocks[idx - 1]
            prev.size += block.size
            self._blocks.pop(idx)

    def block_size(self, addr: int) -> int:
        block = self._allocated.get(addr)
        if block is None:
            raise HeapError(f"address {addr} is not allocated")
        return block.size

    # -- statistics ---------------------------------------------------------

    def used_words(self) -> int:
        return sum(b.size for b in self._blocks if not b.free)

    def free_words(self) -> int:
        return self.capacity - self.used_words()

    def largest_free(self) -> int:
        return max((b.size for b in self._blocks if b.free), default=0)

    def external_fragmentation(self) -> float:
        """1 - largest_free/total_free: 0 when free space is one block."""
        free = self.free_words()
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free() / free

    def block_count(self) -> int:
        return len(self._blocks)

    def utilization(self) -> float:
        return self.used_words() / self.capacity

    def check_invariants(self) -> None:
        """Verify the block list tiles [0, capacity) with no overlap and
        no adjacent free blocks.  Used by property tests."""
        addr = 0
        prev_free = False
        for b in self._blocks:
            if b.addr != addr:
                raise HeapError(f"block list gap/overlap at address {addr}")
            if b.size <= 0:
                raise HeapError(f"non-positive block size at {b.addr}")
            if b.free and prev_free:
                raise HeapError(f"uncoalesced free blocks at {b.addr}")
            prev_free = b.free
            addr += b.size
        if addr != self.capacity:
            raise HeapError(f"block list covers {addr} of {self.capacity} words")

    def snapshot(self) -> Dict:
        return {
            "blocks": [(b.addr, b.size, b.free) for b in self._blocks],
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
            "failed_allocs": self.failed_allocs,
            "scan_steps": self.scan_steps,
        }

    def restore(self, state: Dict) -> None:
        """Rebuild the block list and ``_allocated`` index directly.
        Shared-memory capacity is *not* re-reserved — the cluster's
        :class:`~repro.hardware.memory.SharedMemory` restores its own
        counters, keeping the mirror consistent without double counting."""
        self._blocks = [Block(a, s, f) for a, s, f in state["blocks"]]
        self._allocated = {b.addr: b for b in self._blocks if not b.free}
        self.alloc_count = state["alloc_count"]
        self.free_count = state["free_count"]
        self.failed_allocs = state["failed_allocs"]
        self.scan_steps = state["scan_steps"]
        self.check_invariants()

    def stats(self) -> Dict[str, float]:
        return {
            "capacity": self.capacity,
            "used": self.used_words(),
            "free": self.free_words(),
            "largest_free": self.largest_free(),
            "blocks": self.block_count(),
            "external_fragmentation": self.external_fragmentation(),
            "allocs": self.alloc_count,
            "frees": self.free_count,
            "failed_allocs": self.failed_allocs,
            "scan_steps": self.scan_steps,
        }
