"""Task/procedure activation records.

"Decode and execute message (e.g., an initiate task message may require
the following steps: find code for task, allocate an activation record,
copy parameters from the message queue into activation record, enter
task in ready queue)."

An activation record holds a task's local data; it is allocated on the
cluster heap at initiation and freed at termination — except that
"local data of a task [is] retained over pause/resume", which is why
the record survives pauses and only termination releases it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import SysVMError
from .heap import Heap
from .storage import ACTIVATION_BASE_WORDS, words_of


@dataclass
class ActivationRecord:
    """The run-time representation of one task instance's local state."""

    task_id: int
    task_type: str
    cluster: int
    heap_addr: int
    size_words: int
    params: Tuple[Any, ...] = ()
    locals: Dict[str, Any] = field(default_factory=dict)
    released: bool = False

    def set_local(self, name: str, value: Any) -> None:
        if self.released:
            raise SysVMError(
                f"task {self.task_id}: activation record already released"
            )
        self.locals[name] = value

    def get_local(self, name: str) -> Any:
        try:
            return self.locals[name]
        except KeyError:
            raise SysVMError(
                f"task {self.task_id}: no local variable {name!r}"
            ) from None


def record_size(params: Tuple[Any, ...], locals_words: int = 0) -> int:
    """Words for an activation record: base + parameters + declared locals."""
    return ACTIVATION_BASE_WORDS + words_of(tuple(params)) + locals_words


def allocate_record(
    heap: Heap,
    task_id: int,
    task_type: str,
    cluster: int,
    params: Tuple[Any, ...],
    locals_words: int = 0,
) -> ActivationRecord:
    """Allocate an activation record on a cluster heap ("allocate an
    activation record, copy parameters ... into activation record")."""
    size = record_size(params, locals_words)
    addr = heap.alloc(size)
    return ActivationRecord(
        task_id=task_id,
        task_type=task_type,
        cluster=cluster,
        heap_addr=addr,
        size_words=size,
        params=tuple(params),
    )


def release_record(heap: Heap, record: ActivationRecord) -> None:
    if record.released:
        raise SysVMError(f"task {record.task_id}: double release of activation record")
    heap.free(record.heap_addr)
    record.released = True
