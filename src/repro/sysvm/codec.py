"""Message formatting and decoding.

The system programmer's VM operations include "format and send message
(one of the 7 types above)" and "decode and execute message".  The
codec is the *format* half: it validates a message, computes its wire
size in words from the payload via :func:`~repro.sysvm.storage.words_of`,
and stamps routing information.  Execution of decoded messages is the
kernel's job (:mod:`repro.sysvm.kernel`).
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import MessageError
from .messages import Message, MsgKind, REQUIRED_FIELDS
from .storage import MESSAGE_HEADER_WORDS, words_of


def encode(msg: Message, src_cluster: int, dst_cluster: int) -> Message:
    """Validate, route-stamp, and size a message for transmission."""
    msg.validate()
    msg.src_cluster = src_cluster
    msg.dst_cluster = dst_cluster
    payload_words = sum(words_of(k) + words_of(v) for k, v in msg.payload.items())
    msg.size_words = MESSAGE_HEADER_WORDS + payload_words
    return msg


def decode(msg: Message) -> Dict[str, Any]:
    """Check a received message and return its payload.

    Models the kernel's "decode" step: a malformed or truncated message
    raises :class:`MessageError` rather than corrupting the receiver.
    """
    if msg.size_words < MESSAGE_HEADER_WORDS:
        raise MessageError(f"message #{msg.msg_id} was never encoded")
    msg.validate()
    return dict(msg.payload)


def traffic_class(kind: MsgKind) -> str:
    """Coarse classification used by the E3 traffic tables."""
    if kind in (MsgKind.INITIATE_TASK, MsgKind.LOAD_CODE):
        return "task_management"
    if kind in (MsgKind.PAUSE_NOTIFY, MsgKind.RESUME_TASK, MsgKind.TERMINATE_NOTIFY):
        return "task_control"
    return "data_access"
