"""The per-cluster operating-system kernel.

"Within each cluster, one PE runs the operating system kernel, which
fields incoming messages and assigns available PE's to process them."

The kernel is a serialized service loop on the cluster's kernel PE.
Each unit of kernel work — decoding one incoming message, or assigning
one ready task to a worker PE — occupies the kernel PE for the
configured number of cycles (``message_fixed_cycles`` and
``dispatch_cycles``).  Because the loop is serialized, a flooded input
queue shows up as kernel-PE saturation, which is exactly the effect the
cluster architecture was designed around.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..hardware.cluster import Cluster
from ..hardware.pe import PEState


class Kernel:
    """Message-fielding and dispatch loop for one cluster."""

    def __init__(self, runtime, cluster: Cluster) -> None:
        self.runtime = runtime
        self.cluster = cluster
        self._active = False
        #: the unit of work occupying the kernel PE right now, kept as a
        #: descriptor (not a closure) so checkpoints can serialize it
        self._work: Optional[Tuple] = None
        cluster.on_message = lambda _c: self.kick()

    def kick(self) -> None:
        """Wake the kernel loop if it has work and is not already busy."""
        if self._active or self.cluster.failed:
            return
        if self.cluster.kernel_pe.state is PEState.FAULTY:
            return
        work = self._next_work()
        if work is None:
            return
        self._active = True
        self._start(work)

    def _next_work(self) -> Optional[Tuple]:
        if self.cluster.input_queue:
            return ("msg", self.cluster.dequeue())
        ready = self.runtime.ready[self.cluster.cluster_id]
        pick = ready.pick(self.cluster, self.runtime.dispatch_policy)
        if pick is not None:
            return ("dispatch", pick)
        return None

    def _start(self, work: Tuple) -> None:
        cfg = self.runtime.machine.config
        self._work = work
        # bound method + payload ride the completion event directly
        # (no per-burst closure; see ProcessingElement.execute)
        if work[0] == "msg":
            self.cluster.kernel_pe.execute(
                cfg.message_fixed_cycles, self._finish_msg, work[1]
            )
        else:
            tcb, pe = work[1]
            self.cluster.kernel_pe.execute(
                cfg.dispatch_cycles, self._finish_dispatch, tcb, pe
            )

    def _finish_msg(self, msg) -> None:
        self._active = False
        self._work = None
        self.runtime.handle_message(self.cluster.cluster_id, msg)
        self.kick()

    def _finish_dispatch(self, tcb, pe) -> None:
        self._active = False
        self._work = None
        # the PE was idle when picked and the kernel is serialized, but a
        # fault may have hit it during the dispatch burst
        if pe.is_available():
            self.runtime.start_on_pe(tcb, pe)
        else:
            self.runtime.requeue(tcb)
        self.kick()

    # -- checkpoint/restore ------------------------------------------------

    def snapshot(self) -> Dict:
        """The in-progress kernel burst as a descriptor: the work item
        plus the (end time, seq, cycles) of the burst event on the
        kernel PE, read back from the live event so restore can re-issue
        an identical completion."""
        state: Dict = {"active": self._active, "work": None}
        if self._active and self._work is not None:
            ev = self.cluster.kernel_pe._burst_event
            desc: Dict = {
                "kind": self._work[0],
                "end_time": ev.time,
                "seq": ev.seq,
                "cycles": ev.args[0],
            }
            if self._work[0] == "msg":
                desc["msg"] = self._work[1]
            else:
                tcb, pe = self._work[1]
                desc["tid"] = tcb.tid
                desc["pe"] = pe.index
            state["work"] = desc
        return state

    def restore(self, state: Dict, pending: list) -> None:
        """Install the loop state; if a burst was in flight, append a
        ``(time, seq, thunk)`` entry to *pending* that re-issues it via
        :meth:`ProcessingElement.resume_burst`.  Tasks must already be
        restored (dispatch work references a TCB by tid)."""
        self._active = state["active"]
        self._work = None
        w = state.get("work")
        if w is None:
            return
        kpe = self.cluster.kernel_pe
        if w["kind"] == "msg":
            msg = w["msg"]
            self._work = ("msg", msg)
            done_args = (self._finish_msg, msg)
        else:
            tcb = self.runtime.tasks[w["tid"]]
            pe = self.cluster.pes[w["pe"]]
            self._work = ("dispatch", (tcb, pe))
            done_args = (self._finish_dispatch, tcb, pe)
        pending.append((
            w["end_time"], w["seq"],
            lambda c=w["cycles"], e=w["end_time"], fa=done_args: kpe.resume_burst(c, e, *fa),
        ))
