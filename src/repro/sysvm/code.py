"""Code blocks, constants blocks, and the per-cluster code store.

Task code must be present in a cluster before a task of that type can
run there; the first initiation routed to a cluster that lacks the code
triggers a ``load_code`` message (the seventh message type) carrying
the code/constants block, after which the type is resident.

A :class:`CodeBlock` wraps the Python generator function that *is* the
task body in this simulation, plus a declared code size in words so the
load traffic is realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from ..errors import SysVMError


@dataclass(frozen=True)
class CodeBlock:
    """A task type: its body and the size of its code+constants."""

    task_type: str
    body: Callable  # generator function: body(ctx, *args) -> yields effects
    code_words: int = 256
    constants_words: int = 32
    locals_words: int = 64  # declared local-data size for activation records

    @property
    def load_words(self) -> int:
        return self.code_words + self.constants_words

    def __post_init__(self) -> None:
        if not callable(self.body):
            raise SysVMError(f"task type {self.task_type!r}: body is not callable")
        if self.code_words < 0 or self.constants_words < 0 or self.locals_words < 0:
            raise SysVMError(f"task type {self.task_type!r}: negative size")


class CodeRegistry:
    """Machine-wide registry of task types (the program library)."""

    def __init__(self) -> None:
        self._types: Dict[str, CodeBlock] = {}

    def define(self, block: CodeBlock) -> CodeBlock:
        if block.task_type in self._types:
            raise SysVMError(f"task type {block.task_type!r} already defined")
        self._types[block.task_type] = block
        return block

    def get(self, task_type: str) -> CodeBlock:
        try:
            return self._types[task_type]
        except KeyError:
            raise SysVMError(f"unknown task type {task_type!r}") from None

    def __contains__(self, task_type: str) -> bool:
        return task_type in self._types

    def types(self) -> tuple:
        return tuple(self._types)


class ClusterCodeStore:
    """Which task types are loaded into one cluster's memory."""

    def __init__(self, cluster_id: int, memory) -> None:
        self.cluster_id = cluster_id
        self.memory = memory
        self._resident: Set[str] = set()

    def is_resident(self, task_type: str) -> bool:
        return task_type in self._resident

    def load(self, block: CodeBlock) -> None:
        """Install a code/constants block (idempotent)."""
        if block.task_type in self._resident:
            return
        self.memory.reserve(block.load_words, tag="code")
        self._resident.add(block.task_type)

    def resident_types(self) -> Set[str]:
        return set(self._resident)

    def snapshot(self) -> Dict:
        return {"resident": sorted(self._resident)}

    def restore(self, state: Dict) -> None:
        """Install residency directly; code words were accounted in the
        shared-memory snapshot, so nothing is re-reserved."""
        self._resident = set(state["resident"])
