"""Layer 3 of the FEM-2 design: the system programmer's virtual machine.

The run-time representation of tasks, their scheduling, the seven
message types that connect them, and the storage machinery (general
heap, activation records, code blocks, array store) — everything the
numerical analyst's VM is implemented with.
"""

from .messages import (
    Message,
    MsgKind,
    REQUIRED_FIELDS,
    initiate_task,
    load_code,
    pause_notify,
    remote_call,
    remote_return,
    resume_task,
    terminate_notify,
)
from .codec import decode, encode, traffic_class
from .storage import (
    ACTIVATION_BASE_WORDS,
    ARRAY_DESCRIPTOR_WORDS,
    MESSAGE_HEADER_WORDS,
    WINDOW_DESCRIPTOR_WORDS,
    ArrayHandle,
    DataStore,
    words_of,
)
from .heap import Block, Heap
from .buddy import BuddyHeap
from .activation import ActivationRecord, allocate_record, record_size, release_record
from .code import ClusterCodeStore, CodeBlock, CodeRegistry
from . import effects
from .effects import (
    Broadcast,
    Compute,
    CreateArray,
    Effect,
    FreeArray,
    Initiate,
    Pause,
    ReadWindow,
    Receive,
    RemoteCall,
    ResumeChild,
    WaitChildren,
    WaitPause,
    WriteWindow,
)
from .scheduler import (
    AnyPEDispatch,
    DispatchPolicy,
    ReadyQueue,
    StaticDispatch,
    TaskState,
    TCB,
)
from .kernel import Kernel
from .runtime import PLACEMENTS, Runtime, SimpleContext

__all__ = [
    "Message",
    "MsgKind",
    "REQUIRED_FIELDS",
    "initiate_task",
    "load_code",
    "pause_notify",
    "remote_call",
    "remote_return",
    "resume_task",
    "terminate_notify",
    "decode",
    "encode",
    "traffic_class",
    "ACTIVATION_BASE_WORDS",
    "ARRAY_DESCRIPTOR_WORDS",
    "MESSAGE_HEADER_WORDS",
    "WINDOW_DESCRIPTOR_WORDS",
    "ArrayHandle",
    "DataStore",
    "words_of",
    "Block",
    "Heap",
    "BuddyHeap",
    "ActivationRecord",
    "allocate_record",
    "record_size",
    "release_record",
    "ClusterCodeStore",
    "CodeBlock",
    "CodeRegistry",
    "effects",
    "Broadcast",
    "Compute",
    "CreateArray",
    "Effect",
    "FreeArray",
    "Initiate",
    "Pause",
    "ReadWindow",
    "Receive",
    "RemoteCall",
    "ResumeChild",
    "WaitChildren",
    "WaitPause",
    "WriteWindow",
    "AnyPEDispatch",
    "DispatchPolicy",
    "ReadyQueue",
    "StaticDispatch",
    "TaskState",
    "TCB",
    "Kernel",
    "PLACEMENTS",
    "Runtime",
    "SimpleContext",
]
