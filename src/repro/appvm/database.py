"""The model database: long-term, shared storage.

"Data control: Workspace (user local data); Data base (long-term
storage; shared data)" and "Data base operations (store model in
DB/retrieve)".

The database stores plain dicts (models and results serialize
themselves), is shared between sessions (multi-user access is one of
the architecture requirements), versions every key, and detects
write-write conflicts through optimistic version checks.  JSON
persistence covers the "long-term" half.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DatabaseError


@dataclass
class DBEntry:
    value: Dict[str, Any]
    version: int
    kind: str  # "model" | "result" | "data"


class ModelDatabase:
    """A versioned key-value store of serialized engineering objects."""

    def __init__(self) -> None:
        self._entries: Dict[str, DBEntry] = {}
        self.store_count = 0
        self.retrieve_count = 0

    def store(
        self,
        key: str,
        value: Dict[str, Any],
        kind: str = "data",
        expect_version: Optional[int] = None,
    ) -> int:
        """Store a dict under *key*; returns the new version.

        ``expect_version`` enables optimistic concurrency: the write is
        rejected if someone else updated the key since it was read.
        """
        if not isinstance(value, dict):
            raise DatabaseError(f"database stores dicts, got {type(value).__name__}")
        current = self._entries.get(key)
        if expect_version is not None:
            have = current.version if current else 0
            if have != expect_version:
                raise DatabaseError(
                    f"version conflict on {key!r}: expected {expect_version}, "
                    f"database has {have}"
                )
        version = (current.version if current else 0) + 1
        self._entries[key] = DBEntry(json.loads(json.dumps(value)), version, kind)
        self.store_count += 1
        return version

    def retrieve(self, key: str) -> Dict[str, Any]:
        entry = self._entries.get(key)
        if entry is None:
            raise DatabaseError(f"no database entry {key!r}")
        self.retrieve_count += 1
        return json.loads(json.dumps(entry.value))

    def version(self, key: str) -> int:
        entry = self._entries.get(key)
        return entry.version if entry else 0

    def kind(self, key: str) -> str:
        entry = self._entries.get(key)
        if entry is None:
            raise DatabaseError(f"no database entry {key!r}")
        return entry.kind

    def delete(self, key: str) -> None:
        if key not in self._entries:
            raise DatabaseError(f"no database entry {key!r}")
        del self._entries[key]

    def keys(self, kind: Optional[str] = None) -> List[str]:
        if kind is None:
            return sorted(self._entries)
        return sorted(k for k, e in self._entries.items() if e.kind == kind)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> None:
        data = {
            k: {"value": e.value, "version": e.version, "kind": e.kind}
            for k, e in self._entries.items()
        }
        with open(path, "w") as fh:
            json.dump(data, fh)

    @classmethod
    def load(cls, path: str) -> "ModelDatabase":
        db = cls()
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise DatabaseError(f"cannot load database from {path}: {exc}") from exc
        for k, spec in data.items():
            db._entries[k] = DBEntry(spec["value"], spec["version"], spec["kind"])
        return db
