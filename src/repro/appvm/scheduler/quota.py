"""Admission control: per-tenant quotas over a rolling cycle window.

Each tenant has a mutable :class:`TenantLedger` — in-flight job count,
cycles consumed in the current quota window, lifetime cycles, and the
stride-scheduling pass value the dispatcher orders by.  Admission is a
pure check over (ledger, tenant, now): it never mutates, so a rejected
submit leaves no trace beyond the REJECTED handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .spec import Tenant


@dataclass
class TenantLedger:
    """Mutable scheduling state for one tenant."""

    tenant: Tenant
    in_flight: int = 0          # admitted + running + preempted jobs
    window_start: int = 0       # global cycle the current window opened
    window_used: int = 0        # cycles consumed in the current window
    consumed: int = 0           # lifetime cycles consumed
    jobs_done: int = 0
    jobs_rejected: int = 0
    pass_value: float = 0.0     # stride pass: consumed / share
    wait_cycles: int = 0        # summed queue wait of finished jobs

    def roll_window(self, now: int) -> None:
        """Open a fresh quota window if *now* has moved past this one."""
        width = self.tenant.window_cycles
        if now >= self.window_start + width:
            # jump straight to the window containing `now`
            self.window_start = now - (now - self.window_start) % width
            self.window_used = 0

    def charge(self, cycles: int, now: int) -> None:
        """Account *cycles* of machine time consumed at global *now*."""
        self.roll_window(now)
        self.window_used += cycles
        self.consumed += cycles
        self.pass_value += cycles / self.tenant.share

    def bump(self, cycles: int) -> None:
        """Advance the stride pass without recording consumption.

        Charged at dispatch time (one quantum's worth): placements made
        in the same scheduling round must see each other in the pass
        ordering, or a tenant whose pass ties at a multi-machine free-up
        wins every machine at once and fair share degenerates to
        alternation.
        """
        self.pass_value += cycles / self.tenant.share


def admission_reason(ledger: TenantLedger, now: int,
                     cost: Optional[int] = None) -> Optional[str]:
    """Why a new submit must be rejected right now, or None to admit.

    *cost* is the job's cost in cycles — the static cost model's
    predicted lower bound, or the spec's declared ``cost_units``
    override.  A job whose cost provably exceeds what remains of the
    tenant's window quota is rejected up front instead of being queued
    and starving the window mid-run.
    """
    tenant = ledger.tenant
    if tenant.max_concurrent is not None \
            and ledger.in_flight >= tenant.max_concurrent:
        return (f"tenant {tenant.name!r} is at its concurrency quota "
                f"({ledger.in_flight}/{tenant.max_concurrent} jobs in flight)")
    ledger.roll_window(now)
    if tenant.max_cycles_per_window is not None:
        if ledger.window_used >= tenant.max_cycles_per_window:
            return (f"tenant {tenant.name!r} exhausted its cycle quota for "
                    f"this window ({ledger.window_used}/"
                    f"{tenant.max_cycles_per_window} cycles used)")
        if cost is not None \
                and ledger.window_used + cost > tenant.max_cycles_per_window:
            return (f"tenant {tenant.name!r} cannot fit a job costing "
                    f"{cost} cycles in this window "
                    f"({ledger.window_used}/{tenant.max_cycles_per_window} "
                    f"cycles used)")
    return None


@dataclass
class TenantTable:
    """All tenant ledgers, auto-registering unknown tenants on first use."""

    ledgers: Dict[str, TenantLedger] = field(default_factory=dict)

    def declare(self, tenant: Tenant) -> TenantLedger:
        ledger = TenantLedger(tenant)
        self.ledgers[tenant.name] = ledger
        return ledger

    def get(self, name: str) -> TenantLedger:
        ledger = self.ledgers.get(name)
        if ledger is None:
            ledger = self.declare(Tenant(name))
        return ledger

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant accounting snapshot (for benches and fairness)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, led in sorted(self.ledgers.items()):
            out[name] = {
                "share": led.tenant.share,
                "in_flight": led.in_flight,
                "consumed_cycles": led.consumed,
                "cycles_per_share": led.consumed / led.tenant.share,
                "jobs_done": led.jobs_done,
                "jobs_rejected": led.jobs_rejected,
            }
        return out


def fairness_index(table: TenantTable, active_only: bool = True) -> float:
    """min/max ratio of share-normalized consumption (1.0 = perfectly
    proportional).  Tenants that consumed nothing are skipped unless
    every tenant did."""
    rates = [led.consumed / led.tenant.share
             for led in table.ledgers.values()
             if led.consumed > 0 or not active_only]
    if len(rates) < 2:
        return 1.0
    return min(rates) / max(rates)


def jain_index(table: TenantTable) -> float:
    """Jain's fairness index over share-normalized consumption."""
    rates = [led.consumed / led.tenant.share
             for led in table.ledgers.values() if led.consumed > 0]
    if not rates:
        return 1.0
    return (sum(rates) ** 2) / (len(rates) * sum(r * r for r in rates))
