"""repro.appvm.scheduler — the multi-tenant sharded job service.

Submissions are :class:`JobSpec` values; the :class:`ServicePool`
shards them across a pool of simulated machines with per-tenant
quotas (admission control), stride fair-share dispatch, and
checkpoint-based preemption via :mod:`repro.ckpt`.
"""

from .dispatch import FairShareQueue
from .handle import JobHandle
from .pool import CKPT_SCHEMA, PoolMachine, ServicePool, rebuild_program
from .quota import (
    TenantLedger,
    TenantTable,
    admission_reason,
    fairness_index,
    jain_index,
)
from .spec import LINT_MODES, JobSpec, JobState, Tenant

__all__ = [
    "CKPT_SCHEMA",
    "FairShareQueue",
    "JobHandle",
    "JobSpec",
    "JobState",
    "LINT_MODES",
    "PoolMachine",
    "ServicePool",
    "Tenant",
    "TenantLedger",
    "TenantTable",
    "admission_reason",
    "fairness_index",
    "jain_index",
    "rebuild_program",
]
