"""Job specifications, the job lifecycle, and tenant definitions.

The front door of the multi-tenant job service is one value: a
:class:`JobSpec`.  It replaces the growing ``submit(user, model,
load_set, *, workers, tol, lint)`` keyword pile with a single validated
record that carries everything the scheduler needs — who is asking
(``user``/``tenant``), what to solve (``model``/``load_set``), how to
run it (``workers``/``tol``), and how to schedule it (``priority``,
``lint`` gate mode).

A submitted job moves through an explicit lifecycle::

    PENDING -> ADMITTED -> RUNNING -> DONE
                  |           ^  |
                  |           |  v
                  |        PREEMPTED      (checkpointed, back in queue)
                  v
               REJECTED                   (quota or admission failure)

:class:`Tenant` declares a tenant's fair-share weight and quotas; the
pool's admission control and stride dispatcher consume it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ...errors import AppVMError
from ..model import StructureModel

#: accepted values for JobSpec.lint (the admission-control lint gate)
LINT_MODES = ("off", "warn", "error")


class JobState(enum.Enum):
    """Explicit job lifecycle (replaces the old boolean ``done``)."""

    PENDING = "pending"        # built, not yet through admission
    ADMITTED = "admitted"      # accepted; waiting in the tenant queue
    RUNNING = "running"        # dispatched to a pool machine
    PREEMPTED = "preempted"    # checkpointed off its machine; will resume
    DONE = "done"              # result available
    REJECTED = "rejected"      # refused by admission control (see .reason)

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.REJECTED)

    @property
    def in_flight(self) -> bool:
        """Counts against the tenant's concurrency quota."""
        return self in (JobState.ADMITTED, JobState.RUNNING,
                        JobState.PREEMPTED)


@dataclass(frozen=True)
class JobSpec:
    """Everything one solve submission carries through the service."""

    user: str
    model: StructureModel
    load_set: str
    workers: int = 2
    tol: float = 1e-9
    priority: int = 0
    tenant: str = "default"
    lint: str = "off"
    #: declared cost in machine cycles, overriding the static cost
    #: model's prediction for window-quota admission.  The lint gate
    #: cross-checks a declaration against the predicted lower bound —
    #: a declaration below what the job provably consumes is rejected
    #: (``lint="error"``) or warned about, never silently trusted.
    cost_units: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.user, str) or not self.user:
            raise AppVMError("JobSpec.user must be a non-empty string")
        if not isinstance(self.model, StructureModel):
            raise AppVMError(
                f"JobSpec.model must be a StructureModel, got "
                f"{type(self.model).__name__}")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise AppVMError("JobSpec.tenant must be a non-empty string")
        if self.workers < 1:
            raise AppVMError(f"JobSpec.workers must be >= 1, got {self.workers}")
        if self.tol <= 0:
            raise AppVMError(f"JobSpec.tol must be positive, got {self.tol}")
        if self.lint not in LINT_MODES:
            raise AppVMError(
                f"lint must be one of {LINT_MODES}, got {self.lint!r}")
        if self.cost_units is not None and self.cost_units < 1:
            raise AppVMError(
                f"JobSpec.cost_units must be >= 1 when set, "
                f"got {self.cost_units}")

    def validate_model(self) -> None:
        """Fail fast at submit time on an unsolvable model."""
        self.model.require_mesh()
        self.model.require_constraints()
        self.model.load_set(self.load_set)


@dataclass(frozen=True)
class Tenant:
    """One tenant's scheduling contract with the pool.

    ``share`` is the stride-scheduling weight: over any contended
    stretch, a tenant with share 2 receives twice the machine cycles of
    a tenant with share 1.  The quotas are admission-control limits:
    ``max_concurrent`` caps jobs simultaneously in flight
    (admitted/running/preempted), ``max_cycles_per_window`` caps cycles
    consumed inside each ``window_cycles``-long window of service time;
    a submit that would exceed either is REJECTED, not queued.
    """

    name: str
    share: int = 1
    max_concurrent: Optional[int] = None
    max_cycles_per_window: Optional[int] = None
    window_cycles: int = 1_000_000

    def __post_init__(self) -> None:
        if self.share < 1:
            raise AppVMError(f"tenant share must be >= 1, got {self.share}")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise AppVMError("max_concurrent must be >= 1 when set")
        if self.max_cycles_per_window is not None \
                and self.max_cycles_per_window < 1:
            raise AppVMError("max_cycles_per_window must be >= 1 when set")
        if self.window_cycles < 1:
            raise AppVMError("window_cycles must be >= 1")
