"""The multi-tenant job service: a pool of simulated FEM-2 machines.

Submissions (:class:`~repro.appvm.scheduler.spec.JobSpec`) pass through
admission control (quota + the lint gate), wait in per-tenant queues,
and are dispatched by stride fair-share onto pool machines.  A running
job can be *preempted* for a higher-priority one: its machine is
checkpointed through :mod:`repro.ckpt` into a ``fem2-ckpt/1`` blob, the
machine is handed to the urgent job, and the preempted job later
resumes — on the same or a spare machine — bit-identically, because
checkpoint restore replays the journal to the exact event it stopped
at.

Two clock domains exist.  Each machine's program keeps its own
simulated cycle clock; the pool keeps a *global service clock* that
advances in ``quantum``-cycle scheduling rounds, with every busy
machine running its slice of each round concurrently.  Queue-wait
latency, quota windows, and fair-share accounting are all measured in
global service cycles.

:class:`~repro.appvm.MachineService` is a thin single-machine
compatibility wrapper: a one-machine pool in *persistent* mode (one
program reused across batches, unbounded job slots, drain-style
``run()``), which reproduces the pre-pool service exactly.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import asdict
from typing import Any, Dict, Iterable, List, Optional

from ...ckpt import from_bytes, to_bytes
from ...errors import AppVMError
from ...fem import (
    collect_parallel_cg,
    recover_stresses,
    register_parallel_cg,
)
from ...hardware.machine import MachineConfig
from ...langvm import Fem2Program
from ...lint import (
    COST_SCHEMA,
    FLOW_SCHEMA,
    cost_report,
    flow_summary,
    lint_program,
    machine_env,
)
from ..model import AnalysisResult
from .dispatch import FairShareQueue
from .handle import JobHandle
from .quota import TenantTable, admission_reason, fairness_index, jain_index
from .spec import JobSpec, JobState, Tenant

#: schema tag of machine/service checkpoint blobs (unchanged since PR 3)
CKPT_SCHEMA = "fem2-ckpt/1"


def rebuild_program(config: MachineConfig, state: Dict[str, Any],
                    tracer=None) -> Fem2Program:
    """A fresh journaled program with *state*'s jobs re-registered and
    the captured machine state restored into it (the spare-hardware
    model shared by :meth:`MachineService.resume` and pool preemption)."""
    program = Fem2Program(config, tracer=tracer, journal=True)
    for job in state["jobs"]:
        model = job["model"]
        root_name = job["root_name"]
        register_parallel_cg(
            program,
            model.require_mesh(),
            model.material,
            model.require_constraints(),
            model.load_set(job["load_set"]),
            n_workers=job["workers"],
            tol=job["tol"],
            worker_name=root_name.replace("cg_root", "cg_worker"),
            root_name=root_name,
        )
    program.restore(state["program"])
    return program


class PoolMachine:
    """One simulated machine of the pool and the jobs resident on it."""

    def __init__(self, index: int, config: MachineConfig, journal: bool,
                 tracer=None, plans: Optional[Dict[tuple, Any]] = None) -> None:
        self.index = index
        self.config = config
        self.journal = journal
        self.tracer = tracer
        #: pool-shared compiled-plan cache (registry type tuple -> plan);
        #: None outside a pool, in which case each program compiles its own
        self.plans = plans
        self.jobs: List[JobHandle] = []
        #: global service cycle at which this program's local clock was 0
        self.offset = 0
        #: local cycles accumulated across all assignments (utilization)
        self.busy_cycles = 0
        #: True once a job has run here since the last fresh program
        self.dirty = False
        self.program = self._fresh()

    def _fresh(self) -> Fem2Program:
        return Fem2Program(self.config, tracer=self.tracer,
                           journal=self.journal)

    def reset(self, global_now: int) -> None:
        """Swap in a fresh program (job isolation between assignments)."""
        self.busy_cycles += self.program.now
        self.program = self._fresh()
        self.offset = global_now
        self.jobs = []
        self.dirty = False

    @property
    def global_now(self) -> int:
        return self.offset + self.program.now

    # -- job execution ------------------------------------------------------

    def spawn(self, handle: JobHandle) -> None:
        """Register and start *handle*'s solve as a root task here."""
        spec = handle.spec
        model = spec.model
        worker_name, root_name = handle.task_names()
        register_parallel_cg(
            self.program,
            model.require_mesh(),
            model.material,
            model.require_constraints(),
            model.load_set(spec.load_set),
            n_workers=spec.workers,
            tol=spec.tol,
            worker_name=worker_name,
            root_name=root_name,
        )
        runtime = self.program.runtime
        obs = runtime.obs
        if obs is not None and obs.enabled:
            handle.span = obs.begin(
                "appvm.job", f"{spec.user}/{model.name}", self.program.now,
                user=spec.user, model=model.name, load_set=spec.load_set,
                workers=spec.workers,
            )
        # parent the job's root task under the job span (restored after
        # spawn so unrelated root tasks stay unparented)
        runtime.obs_root_parent = handle.span
        try:
            self._ensure_plan()
            handle.tid = self.program.start(root_name)
        finally:
            runtime.obs_root_parent = None
        self.jobs.append(handle)
        self.dirty = True

    def _ensure_plan(self) -> None:
        """On the compiled engine, install the pool's cached plan for the
        current registry state (compiling and caching on first sight), so
        a model's whole job stream shares one submit-time compilation."""
        program = self.program
        if program.machine.engine_kind != "compiled" or self.plans is None:
            return
        key = tuple(program.runtime.registry.types())
        plan = self.plans.get(key)
        if plan is None:
            plan = self.plans[key] = program.compile_plan()
        program.install_plan(plan)

    def run_slice(self, global_until: Optional[int] = None) -> int:
        """Advance this machine's event loop; returns local cycles used.

        With a bound, events run while they fall inside the slice (the
        machine stops *between* events, a checkpoint-safe point); with
        ``None`` the machine drains to quiescence through the runtime,
        which also performs its stuck-task diagnosis.
        """
        engine = self.program.machine.engine
        before = engine.now
        if global_until is None:
            self.program.runtime.run()
        else:
            until = global_until - self.offset
            while not engine.halted:
                nxt = engine._peek()
                if nxt is None or nxt.time > until:
                    break
                engine.step()
        return engine.now - before

    def collect_finished(self) -> List[JobHandle]:
        """Resolve every resident job whose root task has completed."""
        runtime = self.program.runtime
        done = [h for h in self.jobs if h.tid in runtime.root_results]
        obs = runtime.obs
        for handle in done:
            info = collect_parallel_cg(self.program, handle.tid)
            stresses = recover_stresses(handle.spec.model.require_mesh(),
                                        handle.spec.model.material, info.u)
            handle._result = AnalysisResult(
                handle.spec.model.name, handle.spec.load_set, info.u, stresses,
                f"fem2-service[{handle.spec.workers}]",
                iterations=info.iterations,
                elapsed_cycles=info.elapsed_cycles,
            )
            if obs is not None and obs.enabled and handle.span is not None:
                obs.end(handle.span, self.program.now,
                        iterations=info.iterations)
        if done:
            self.jobs = [h for h in self.jobs if h not in done]
            if not self.jobs:
                self.busy_cycles += self.program.now
        if self.jobs and self.program.machine.engine.idle():
            # no events left yet jobs are unfinished: let the runtime
            # raise its stuck-task (deadlock / lost wakeup) diagnosis
            runtime.run()
        return done

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self, completed_batches: int = 0) -> bytes:
        """This machine — config, resident jobs, program state — as one
        ``fem2-ckpt/1`` blob, restorable by
        :meth:`MachineService.resume` or by the pool's preemption path."""
        if not self.journal:
            raise AppVMError(
                "service was not built with checkpointing=True"
            )
        jobs = []
        for handle in self.jobs:
            spec = handle.spec
            jobs.append({
                "user": spec.user,
                "model": spec.model,
                "load_set": spec.load_set,
                "workers": spec.workers,
                "tol": spec.tol,
                "priority": spec.priority,
                "tenant": spec.tenant,
                "tid": handle.tid,
                "root_name": self.program.runtime.tasks[handle.tid].task_type,
            })
        return to_bytes({
            "schema": CKPT_SCHEMA,
            "config": asdict(self.config),
            "completed_batches": completed_batches,
            "jobs": jobs,
            "program": self.program.snapshot(),
        })

    def restore_blob(self, blob: bytes, handles: List[JobHandle],
                     global_now: int) -> None:
        """Restore a checkpointed machine image here and re-attach the
        surviving *handles* (their tids are preserved by the blob)."""
        state = from_bytes(blob)
        if state.get("schema") != CKPT_SCHEMA:
            raise AppVMError(
                f"not a machine checkpoint (schema={state.get('schema')!r})")
        if len(state["jobs"]) != len(handles):
            raise AppVMError(
                f"checkpoint carries {len(state['jobs'])} jobs but "
                f"{len(handles)} handles were re-attached")
        self.busy_cycles += self.program.now
        self.program = rebuild_program(MachineConfig(**state["config"]),
                                       state, tracer=self.tracer)
        self.offset = global_now - self.program.now
        self.jobs = list(handles)
        self.dirty = True


class ServicePool:
    """Multi-tenant job scheduler over a pool of simulated machines."""

    def __init__(
        self,
        n_machines: int = 4,
        config: Optional[MachineConfig] = None,
        tenants: Iterable[Tenant] = (),
        *,
        tracer=None,
        quantum: Optional[int] = 2000,
        machine_slots: Optional[int] = 1,
        checkpointing: bool = True,
        persistent: bool = False,
        plan_cache: Optional[Dict[tuple, Any]] = None,
    ) -> None:
        if n_machines < 1:
            raise AppVMError("a pool needs at least one machine")
        if quantum is not None and quantum < 1:
            raise AppVMError("quantum must be >= 1 cycles (or None to drain)")
        if machine_slots is not None and machine_slots < 1:
            raise AppVMError("machine_slots must be >= 1 (or None for unbounded)")
        self.config = config or MachineConfig(
            n_clusters=2, pes_per_cluster=3,
            memory_words_per_cluster=8_000_000,
        )
        #: drain mode (quantum=None) runs each machine to quiescence —
        #: the single-machine compatibility behaviour
        self.quantum = quantum
        self.machine_slots = machine_slots
        self.checkpointing = checkpointing
        #: persistent machines reuse one program across batches and are
        #: never reset (the pre-pool MachineService contract); fresh
        #: machines get a new program per assignment (job isolation)
        self.persistent = persistent
        # pool-level sched.* spans exist only in quantum mode; drain mode
        # is the single-machine compatibility path, which must produce
        # byte-identical traces to the pre-pool service (no sched spans)
        self.tracer = tracer if quantum is not None else None
        # machine-level tracing shares the pool tracer only when the two
        # clock domains coincide (one persistent machine, global clock =
        # machine clock); multi-machine pools trace at the sched.* level
        machine_tracer = tracer if (persistent and n_machines == 1) else None
        #: compiled plans per registry type tuple, shared by every pool
        #: machine (the submit-time analogue of the lint-gate cache
        #: below).  Pass *plan_cache* to share one cache across several
        #: pools/services in a process — a campaign worker runs one
        #: point per fresh service, and points with the same registry
        #: shape then reuse one submit-time compilation.
        self._plan_cache: Dict[tuple, Any] = \
            plan_cache if plan_cache is not None else {}
        self.machines = [
            PoolMachine(i, self.config, journal=checkpointing,
                        tracer=machine_tracer, plans=self._plan_cache)
            for i in range(n_machines)
        ]
        self.tenants = TenantTable()
        for tenant in tenants:
            self.tenants.declare(tenant)
        self.queue = FairShareQueue(self.tenants)
        #: the global service clock, in cycles
        self.now = 0
        self.completed_batches = 0
        self.handles: List[JobHandle] = []
        self.stats: Dict[str, int] = {
            "submitted": 0, "rejected": 0, "dispatched": 0, "completed": 0,
            "preemptions": 0, "resumes": 0, "ckpt_bytes": 0,
        }
        self._ids = itertools.count(1)
        self._finished_unclaimed: List[JobHandle] = []
        self._lint_cache: Dict[tuple, object] = {}
        #: predicted cost units per (model, load set, workers, tol)
        self._cost_cache: Dict[tuple, int] = {}

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobHandle:
        """Admit one job (or reject it) and queue it for dispatch.

        Rejection is not an exception: the returned handle's state is
        ``REJECTED`` and its ``reason`` says which quota refused it.
        The lint gate keeps its pre-pool contract: ``lint="error"``
        raises on findings before anything is queued.
        """
        if not isinstance(spec, JobSpec):
            raise AppVMError(
                f"submit() takes a JobSpec, got {type(spec).__name__} "
                "(the positional form lives on MachineService.submit as a "
                "deprecated shim)")
        spec.validate_model()
        if spec.lint != "off":
            self._lint_gate(spec.lint)
        cost = self._cost_units(spec)
        handle = JobHandle(spec, owner=self, job_id=next(self._ids))
        handle.submit_time = self.now
        self.handles.append(handle)
        ledger = self.tenants.get(spec.tenant)
        reason = admission_reason(ledger, self.now, cost=cost)
        if reason is not None:
            handle.state = JobState.REJECTED
            handle.reason = reason
            ledger.jobs_rejected += 1
            self.stats["rejected"] += 1
            self._point("sched.reject", f"{spec.user}/{spec.tenant}",
                        tenant=spec.tenant, reason=reason)
            return handle
        handle.state = JobState.ADMITTED
        ledger.in_flight += 1
        self.stats["submitted"] += 1
        self._enqueue(handle)
        self._dispatch()
        return handle

    def _enqueue(self, handle: JobHandle) -> None:
        handle._enqueued_at = self.now
        tr = self.tracer
        if tr is not None and tr.enabled:
            handle.queue_span = tr.begin(
                "sched.queue", f"{handle.spec.user}/{handle.spec.model.name}",
                self.now, tenant=handle.spec.tenant,
                priority=handle.spec.priority,
            )
        self.queue.push(handle)

    def _lint_gate(self, mode: str) -> None:
        """Run :func:`repro.lint.lint_program` over the task types
        registered on the pool's front machine (cached per registry
        state) and enforce its findings before admission.  The gate also
        extracts the program's static route summary (``fem2-flow/1``)
        and cost bounds (``fem2-cost/1``), posting both on the tracer as
        ``lint.flow`` / ``lint.cost`` points, so every admitted job
        carries its predicted communication structure and cost."""
        program = self.machines[0].program
        key = tuple(program.runtime.registry.types())
        cached = self._lint_cache.get(key)
        if cached is None:
            cached = (lint_program(program), flow_summary(program),
                      cost_report(program))
            self._lint_cache[key] = cached
        report, flow, cost = cached
        report.emit(program.runtime.obs, program.now)
        tr = program.runtime.obs
        if tr is not None and getattr(tr, "enabled", False):
            tr.point("lint.flow", "static routes", program.now,
                     schema=FLOW_SCHEMA, tasks=len(flow.tasks),
                     routes=len(flow.routes),
                     msg_routes=len(flow.msg_routes))
            tr.point("lint.cost", "static cost bounds", program.now,
                     schema=COST_SCHEMA, tasks=len(cost.tasks),
                     edges=len(cost.edges), bounded=cost.bounded)
        if report.clean:
            return
        rendered = "; ".join(f.render() for f in report.findings)
        if mode == "error" and report.errors:
            raise AppVMError(f"program rejected by static analysis: {rendered}")
        warnings.warn(f"static analysis findings: {rendered}",
                      UserWarning, stacklevel=4)

    # -- predicted cost ------------------------------------------------------

    def _cost_units(self, spec: JobSpec) -> int:
        """The job's admission cost in cycles: the declared
        ``cost_units`` override when present (cross-checked against the
        model under the lint gate), else the static cost model's
        predicted lower bound — the cycles the job *provably* consumes,
        so admission never over-rejects on a loose upper bound."""
        if spec.cost_units is None:
            return self._predicted_cost_units(spec)
        if spec.lint != "off":
            predicted = self._predicted_cost_units(spec)
            if spec.cost_units < predicted:
                msg = (f"declared cost_units={spec.cost_units} is below "
                       f"the predicted lower bound of {predicted} cycles "
                       f"for {spec.model.name!r}")
                if spec.lint == "error":
                    raise AppVMError(f"job rejected by cost check: {msg}")
                warnings.warn(msg, UserWarning, stacklevel=3)
        return spec.cost_units

    def _predicted_cost_units(self, spec: JobSpec) -> int:
        """Predicted guaranteed-minimum cycles of one solve, from the
        ``fem2-cost/1`` report of the job's task types registered on a
        scratch program (cached per solve shape).  Unresolved program
        parameters evaluate at zero — sound for a lower bound, since
        every cost parameter is non-negative."""
        key = (spec.model.name, spec.load_set, spec.workers, spec.tol)
        cached = self._cost_cache.get(key)
        if cached is None:
            scratch = Fem2Program(self.config)
            register_parallel_cg(
                scratch,
                spec.model.require_mesh(),
                spec.model.material,
                spec.model.require_constraints(),
                spec.model.load_set(spec.load_set),
                n_workers=spec.workers,
                tol=spec.tol,
                worker_name="cost.cg_worker",
                root_name="cost.cg_root",
            )
            lo, _hi = cost_report(scratch).cycles.evaluate(
                machine_env(self.config), default=0.0)
            cached = max(1, int(lo))
            self._cost_cache[key] = cached
        return cached

    # -- dispatch -----------------------------------------------------------

    def _free_machine(self) -> Optional[PoolMachine]:
        for machine in self.machines:
            if self.machine_slots is None \
                    or len(machine.jobs) < self.machine_slots:
                return machine
        return None

    def _dispatch(self) -> None:
        """Place queued jobs on free machines in fair-share order; when
        none is free, consider preempting for a higher-priority job."""
        while self.queue:
            machine = self._free_machine()
            if machine is not None:
                handle = self.queue.pop_next()
                self._place(handle, machine)
                continue
            victim = self._preemption_victim()
            if victim is None:
                break
            self._preempt(victim)
            self._place(self.queue.pop_urgent(), self._free_machine())

    def _place(self, handle: JobHandle, machine: PoolMachine) -> None:
        wait = self.now - handle._enqueued_at
        handle.queue_wait += wait
        if handle.dispatch_time is None:
            handle.dispatch_time = self.now
        tr = self.tracer
        if tr is not None and tr.enabled and handle.queue_span is not None:
            tr.end(handle.queue_span, self.now, wait=wait)
            handle.queue_span = None
        if not self.persistent and not machine.jobs:
            # sync the machine's clock domain to the global clock: a
            # fresh assignment starts "now", not at the machine's epoch
            if machine.dirty:
                machine.reset(self.now)
            else:
                machine.offset = self.now - machine.program.now
        if handle._resume_image is not None:
            machine.restore_blob(handle._resume_image, [handle], self.now)
            handle._resume_image = None
            self.stats["resumes"] += 1
            self._point("sched.resume", f"{handle.spec.user}",
                        machine=machine.index, wait=wait)
        else:
            machine.spawn(handle)
            self._point("sched.dispatch", f"{handle.spec.user}",
                        machine=machine.index, wait=wait)
        handle.state = JobState.RUNNING
        handle.machine = machine
        if self.quantum is not None:
            self.tenants.get(handle.spec.tenant).bump(self.quantum)
        self.stats["dispatched"] += 1

    # -- preemption ---------------------------------------------------------

    @property
    def preemption_enabled(self) -> bool:
        return self.checkpointing and not self.persistent \
            and self.quantum is not None

    def _preemption_victim(self) -> Optional[PoolMachine]:
        """The machine to checkpoint away for the best queued job, or
        None when nothing queued outranks every running job."""
        if not self.preemption_enabled:
            return None
        best = self.queue.best_priority()
        if best is None:
            return None
        victims = [
            m for m in self.machines
            if len(m.jobs) == 1
            and m.jobs[0].state is JobState.RUNNING
            and m.jobs[0].spec.priority < best
        ]
        if not victims:
            return None
        # lowest priority first; among equals the most over-served tenant
        return min(victims, key=lambda m: (
            m.jobs[0].spec.priority,
            -self.tenants.get(m.jobs[0].spec.tenant).pass_value,
            m.index,
        ))

    def _preempt(self, machine: PoolMachine) -> None:
        (handle,) = machine.jobs
        blob = machine.checkpoint()
        handle._resume_image = blob
        handle.state = JobState.PREEMPTED
        handle.preemptions += 1
        handle.machine = None
        self.stats["preemptions"] += 1
        self.stats["ckpt_bytes"] += len(blob)
        self._point("sched.preempt", f"{handle.spec.user}",
                    machine=machine.index, bytes=len(blob))
        machine.reset(self.now)
        self._enqueue(handle)

    # -- the clock ----------------------------------------------------------

    def advance(self, cycles: int):
        """Run scheduling rounds until the global clock has moved
        *cycles* forward (idle time included); jobs may be submitted
        between calls, which is how arrivals-over-time are modelled."""
        if self.quantum is None:
            raise AppVMError("advance() needs a quantum (drain-mode pool)")
        end = self.now + cycles
        while self.now < end:
            if not self.queue and not any(m.jobs for m in self.machines):
                self.now = end
                break
            self._round(min(end, self.now + self.quantum))
        return self

    def run(self) -> List[JobHandle]:
        """Run every admitted job to completion; returns the handles
        finished since the last call, in completion order."""
        if self.quantum is None:
            self._dispatch()
            for machine in self.machines:
                if machine.jobs:
                    delta = machine.run_slice(None)
                    self.now = max(self.now, machine.global_now)
                    self._charge(machine, delta)
                    self._resolve(machine)
        else:
            while self.queue or any(m.jobs for m in self.machines):
                self._round(self.now + self.quantum)
        self.completed_batches += 1
        finished = self._finished_unclaimed
        self._finished_unclaimed = []
        return finished

    def _round(self, target: int) -> None:
        """One co-scheduling round: dispatch, then every busy machine
        runs its slice of [now, target) concurrently."""
        self._dispatch()
        deltas = []
        for machine in self.machines:
            if machine.jobs:
                deltas.append((machine, machine.run_slice(target)))
        self.now = target
        for machine, delta in deltas:
            self._charge(machine, delta)
            self._resolve(machine)

    def _charge(self, machine: PoolMachine, delta: int) -> None:
        """Account a slice's cycles to the resident jobs' tenants."""
        if delta <= 0 or not machine.jobs:
            return
        share, remainder = divmod(delta, len(machine.jobs))
        for i, handle in enumerate(machine.jobs):
            cycles = share + (remainder if i == 0 else 0)
            if cycles:
                self.tenants.get(handle.spec.tenant).charge(cycles, self.now)

    def _resolve(self, machine: PoolMachine) -> None:
        for handle in machine.collect_finished():
            handle.state = JobState.DONE
            handle.finish_time = machine.global_now
            handle.machine = None
            ledger = self.tenants.get(handle.spec.tenant)
            ledger.in_flight -= 1
            ledger.jobs_done += 1
            ledger.wait_cycles += handle.queue_wait
            self.stats["completed"] += 1
            self._finished_unclaimed.append(handle)

    # -- checkpoint scope ---------------------------------------------------

    def checkpoint_job(self, handle: JobHandle) -> bytes:
        """Checkpoint *handle*'s machine (per-job scoping: one machine,
        its resident jobs, nothing else)."""
        machine = handle.machine
        if machine is None:
            raise AppVMError(
                f"job for {handle.spec.user!r} is not resident on a machine "
                f"(state={handle.state.value})")
        return machine.checkpoint(completed_batches=self.completed_batches)

    # -- reporting ----------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return sum(1 for h in self.handles if h.state.in_flight)

    def queue_waits(self) -> List[int]:
        """Queue-wait cycles of every finished job (latency population)."""
        return [h.queue_wait for h in self.handles
                if h.state is JobState.DONE]

    def latency_summary(self) -> Dict[str, float]:
        waits = sorted(self.queue_waits())
        if not waits:
            return {"jobs": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0}

        def pct(q: float) -> float:
            return float(waits[min(len(waits) - 1, int(q * len(waits)))])

        return {
            "jobs": len(waits),
            "p50": pct(0.50),
            "p99": pct(0.99),
            "mean": sum(waits) / len(waits),
        }

    def report(self) -> Dict[str, Any]:
        busy = sum(m.busy_cycles + (m.program.now if m.jobs else 0)
                   for m in self.machines)
        capacity = max(1, self.now * len(self.machines))
        return {
            "global_cycles": self.now,
            "machines": len(self.machines),
            "stats": dict(self.stats),
            "tenants": self.tenants.report(),
            "fairness_min_max": round(fairness_index(self.tenants), 4),
            "fairness_jain": round(jain_index(self.tenants), 4),
            "utilization": round(min(1.0, busy / capacity), 4),
            "latency": self.latency_summary(),
        }

    def _point(self, kind: str, label: str, **attrs: Any) -> None:
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.point(kind, label, self.now, **attrs)
