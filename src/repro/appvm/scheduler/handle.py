"""The job handle: one submission's identity, lifecycle, and result.

A :class:`JobHandle` is returned by every ``submit`` — including
rejected ones, whose state is :attr:`JobState.REJECTED` and whose
``reason`` says why.  The handle records the scheduling timeline
(submit / dispatch / finish, in global service cycles) so queue-wait
latency is measurable per job, and carries the job's obs spans.
"""

from __future__ import annotations

from typing import Optional

from ...errors import AppVMError
from ..model import AnalysisResult, StructureModel
from .spec import JobSpec, JobState


class JobHandle:
    """One submitted solve job, tracked through the scheduler lifecycle."""

    __slots__ = ("spec", "state", "reason", "job_id", "tid", "span",
                 "queue_span", "machine", "submit_time", "dispatch_time",
                 "finish_time", "queue_wait", "preemptions", "_result",
                 "_owner", "_resume_image", "_enqueued_at")

    def __init__(self, spec: JobSpec, owner=None, job_id: int = 0) -> None:
        self.spec = spec
        self.state = JobState.PENDING
        self.reason: Optional[str] = None   # set when REJECTED
        self.job_id = job_id
        self.tid: Optional[int] = None      # root task id on its machine
        self.span = None                    # appvm.job span (machine tracer)
        self.queue_span = None              # sched.queue span (pool tracer)
        self.machine = None                 # PoolMachine while RUNNING
        self.submit_time: Optional[int] = None    # global service cycles
        self.dispatch_time: Optional[int] = None  # first dispatch
        self.finish_time: Optional[int] = None
        self.queue_wait = 0                 # total cycles spent queued
        self.preemptions = 0
        self._result: Optional[AnalysisResult] = None
        self._owner = owner
        self._resume_image: Optional[bytes] = None  # fem2-ckpt/1 blob
        self._enqueued_at: Optional[int] = None

    # -- JobSpec convenience views (kept from the old flat handle) ---------

    @property
    def user(self) -> str:
        return self.spec.user

    @property
    def model(self) -> StructureModel:
        return self.spec.model

    @property
    def load_set(self) -> str:
        return self.spec.load_set

    @property
    def workers(self) -> int:
        return self.spec.workers

    @property
    def tol(self) -> float:
        return self.spec.tol

    # -- lifecycle ----------------------------------------------------------

    @property
    def done(self) -> bool:
        """Derived alias for ``state is JobState.DONE``."""
        return self.state is JobState.DONE

    def result(self) -> AnalysisResult:
        """The job's analysis result; raises until the job is DONE."""
        if self._result is None:
            if self.state is JobState.REJECTED:
                raise AppVMError(
                    f"job for {self.spec.user!r} was rejected: {self.reason}")
            raise AppVMError(
                f"job for {self.spec.user!r} has not finished "
                f"(state={self.state.value}; run the service)")
        return self._result

    def checkpoint(self) -> bytes:
        """Checkpoint the *job's machine* — not the whole service.

        The blob captures this job's machine (its configuration, the
        jobs resident on it, and the complete program state) in the
        ``fem2-ckpt/1`` format; restore it with
        :meth:`repro.appvm.MachineService.resume` or let the pool do it
        as part of preemption.  Jobs sharing the machine are captured
        too; jobs on *other* pool machines are not.
        """
        if self._owner is None:
            raise AppVMError("job handle is not attached to a service")
        return self._owner.checkpoint_job(self)

    # -- naming -------------------------------------------------------------

    def task_names(self) -> tuple:
        """Deterministic (worker, root) task-type names for this job.

        Stable names make re-registration under resume replay-identical
        (see :func:`repro.fem.register_parallel_cg`).
        """
        return (f"fem.cg_worker.j{self.job_id}", f"fem.cg_root.j{self.job_id}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"JobHandle({self.spec.user!r}, {self.spec.model.name!r}, "
                f"{self.state.value})")
