"""Fair-share dispatch: stride scheduling over tenant queues.

Every tenant owns a FIFO of waiting jobs (higher ``priority`` first,
submission order within a priority).  The dispatcher picks the next job
from the queued tenant with the smallest stride *pass value* —
``consumed_cycles / share`` — so over any contended stretch each
tenant's machine-cycle consumption converges to its share.  Preempted
jobs re-enter the same queues and keep their tenant's pass, so resuming
is just being dispatched again.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, List, Optional

from .handle import JobHandle
from .quota import TenantTable


class FairShareQueue:
    """Per-tenant priority FIFOs ordered globally by stride pass."""

    def __init__(self, tenants: TenantTable) -> None:
        self._tenants = tenants
        self._queues: Dict[str, List[tuple]] = defaultdict(list)
        self._seq = itertools.count()

    def push(self, handle: JobHandle) -> None:
        queue = self._queues[handle.spec.tenant]
        # stable order: priority desc, then submission order
        queue.append((-handle.spec.priority, next(self._seq), handle))
        queue.sort()

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def __bool__(self) -> bool:
        return any(self._queues.values())

    def waiting(self) -> List[JobHandle]:
        return [entry[2] for q in self._queues.values() for entry in q]

    def best_priority(self) -> Optional[int]:
        """Highest priority among all queued jobs (preemption trigger)."""
        best = None
        for queue in self._queues.values():
            if queue:
                prio = -queue[0][0]
                best = prio if best is None else max(best, prio)
        return best

    def pop_next(self) -> Optional[JobHandle]:
        """The head job of the minimum-pass tenant with work queued."""
        candidates = [name for name, q in self._queues.items() if q]
        if not candidates:
            return None
        tenant = min(
            candidates,
            key=lambda name: (self._tenants.get(name).pass_value, name),
        )
        _, _, handle = self._queues[tenant].pop(0)
        return handle

    def pop_urgent(self) -> Optional[JobHandle]:
        """The globally highest-priority queued job (after a preemption
        was triggered for it), falling back to fair-share order among
        equals."""
        best = self.best_priority()
        if best is None:
            return None
        candidates = [
            name for name, q in self._queues.items()
            if q and -q[0][0] == best
        ]
        tenant = min(
            candidates,
            key=lambda name: (self._tenants.get(name).pass_value, name),
        )
        _, _, handle = self._queues[tenant].pop(0)
        return handle
