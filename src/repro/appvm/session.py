"""Workstation sessions: the application user's operations.

"The FEM-2 user would typically be a structural engineer using the
system as an interactive workstation that allows one to store the
description of a structural model, to invoke applications packages to
analyze the model, and to display the results."

Operations (from the paper's list): define structure model, generate
grid, define elements, solve model/load set for displacements,
calculate stresses, data base store/retrieve.  ``solve`` runs either
host-side (the oracle) or on the simulated FEM-2 machine
(``engine="fem2"``), which is how a whole interactive session becomes a
measurable machine workload (experiment E12).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

import numpy as np

from ..errors import AppVMError

from ..fem import (
    Constraints,
    LoadSet,
    Material,
    cantilever_frame,
    mesh_quality,
    natural_frequencies,
    newmark_transient,
    parallel_cg_solve,
    portal_frame,
    pratt_truss,
    recover_stresses,
    rect_grid,
    static_solve,
)
from ..hardware.machine import MachineConfig
from ..langvm import Fem2Program
from .database import ModelDatabase
from .display import render_displacements, render_model, render_stresses
from .model import AnalysisResult, StructureModel
from .workspace import Workspace


class WorkstationSession:
    """One user's interactive session against a (possibly shared) database."""

    def __init__(
        self,
        user: str = "engineer",
        database: Optional[ModelDatabase] = None,
        machine_config: Optional[MachineConfig] = None,
    ) -> None:
        self.user = user
        self.database = database if database is not None else ModelDatabase()
        self.workspace = Workspace(owner=user)
        self.machine_config = machine_config or MachineConfig(
            memory_words_per_cluster=4_000_000
        )
        self.current: Optional[StructureModel] = None
        self.last_program: Optional[Fem2Program] = None

    # -- model building ("define structure model", "generate grid") ------------

    def define_structure(self, name: str) -> StructureModel:
        model = StructureModel(name)
        self.workspace.put(f"model:{name}", model)
        self.current = model
        return model

    def _model(self) -> StructureModel:
        if self.current is None:
            raise AppVMError("no current model; define one first")
        return self.current

    def select(self, name: str) -> StructureModel:
        self.current = self.workspace.get(f"model:{name}")
        return self.current

    def set_material(self, **props: Any) -> Material:
        model = self._model()
        model.material = Material(**props)
        return model.material

    def generate_grid(self, nx: int, ny: int, lx: float = 1.0, ly: float = 1.0,
                      kind: str = "quad4") -> None:
        self._model().set_mesh(rect_grid(nx, ny, lx, ly, kind))

    def generate_truss(self, n_panels: int, panel: float = 1.0,
                       height: float = 1.0) -> None:
        self._model().set_mesh(pratt_truss(n_panels, panel, height))

    def generate_frame(self, kind: str, *args: Any, **kw: Any) -> None:
        if kind == "cantilever":
            self._model().set_mesh(cantilever_frame(*args, **kw))
        elif kind == "portal":
            self._model().set_mesh(portal_frame(*args, **kw))
        else:
            raise AppVMError(f"unknown frame kind {kind!r}")

    # -- supports and loads -----------------------------------------------------

    def fix_nodes(self, nodes: Iterable[int], comps: Optional[Iterable[int]] = None) -> None:
        model = self._model()
        model.require_mesh()
        model.constraints.fix_nodes(nodes, comps)

    def fix_line(self, x: Optional[float] = None, y: Optional[float] = None,
                 comps: Optional[Iterable[int]] = None) -> int:
        model = self._model()
        nodes = model.require_mesh().nodes_on(x=x, y=y)
        if not len(nodes):
            raise AppVMError(f"no nodes on line x={x} y={y}")
        model.constraints.fix_nodes(nodes, comps)
        return len(nodes)

    def define_load_set(self, name: str) -> LoadSet:
        model = self._model()
        model.require_mesh()
        if name in model.load_sets:
            raise AppVMError(f"load set {name!r} already defined")
        ls = LoadSet(name)
        model.load_sets[name] = ls
        return ls

    def add_load(self, load_set: str, node: int, comp: int, value: float) -> None:
        self._model().load_set(load_set).add_nodal(node, comp, value)

    def add_line_load(self, load_set: str, comp: int, value: float,
                      x: Optional[float] = None, y: Optional[float] = None) -> int:
        model = self._model()
        nodes = model.require_mesh().nodes_on(x=x, y=y)
        if not len(nodes):
            raise AppVMError(f"no nodes on line x={x} y={y}")
        model.load_set(load_set).add_nodal_many(nodes, comp, value)
        return len(nodes)

    # -- analysis ("solve", "calculate stresses") -----------------------------------

    def solve(
        self,
        load_set: str,
        method: str = "sparse_lu",
        engine: str = "host",
        workers: int = 4,
        tol: float = 1e-10,
    ) -> AnalysisResult:
        model = self._model()
        mesh = model.require_mesh()
        constraints = model.require_constraints()
        loads = model.load_set(load_set)
        if engine == "host":
            r = static_solve(mesh, model.material, constraints, loads,
                             method=method, with_stresses=True)
            result = AnalysisResult(
                model.name, load_set, r.u, r.stresses, method,
                iterations=r.solver.iterations,
            )
        elif engine == "fem2":
            program = Fem2Program(self.machine_config)
            info = parallel_cg_solve(
                program, mesh, model.material, constraints, loads,
                n_workers=workers, tol=tol,
            )
            stresses = recover_stresses(mesh, model.material, info.u)
            result = AnalysisResult(
                model.name, load_set, info.u, stresses, f"fem2-cg[{workers}]",
                iterations=info.iterations, elapsed_cycles=info.elapsed_cycles,
            )
            self.last_program = program
        else:
            raise AppVMError(f"unknown engine {engine!r}; host or fem2")
        self.workspace.put(f"result:{model.name}:{load_set}", result)
        return result

    def result(self, load_set: str, model_name: Optional[str] = None) -> AnalysisResult:
        name = model_name or self._model().name
        return self.workspace.get(f"result:{name}:{load_set}")

    def modal(self, n_modes: int = 4, lumped: bool = True):
        """Natural frequencies of the current model (host analysis)."""
        model = self._model()
        result = natural_frequencies(
            model.require_mesh(), model.material, model.require_constraints(),
            n_modes=n_modes, lumped=lumped,
        )
        self.workspace.put(f"modal:{model.name}", result)
        return result

    def check_quality(self) -> dict:
        """Mesh quality summary of the current model's grid."""
        return mesh_quality(self._model().require_mesh())

    def transient(
        self,
        load_set: str,
        dt: float,
        n_steps: int,
        excitation: str = "step",
        frequency_hz: float = 0.0,
    ):
        """Time-history analysis: the load set applied as f(t).

        ``excitation`` is ``"step"`` (constant from t=0) or ``"sine"``
        (scaled by sin(2*pi*f*t) with *frequency_hz*).
        """
        model = self._model()
        mesh = model.require_mesh()
        constraints = model.require_constraints()
        f0 = model.load_set(load_set).vector(mesh)
        if excitation == "step":
            force_fn = lambda t: f0
        elif excitation == "sine":
            if frequency_hz <= 0:
                raise AppVMError("sine excitation needs frequency_hz > 0")
            omega = 2.0 * np.pi * frequency_hz
            force_fn = lambda t: f0 * np.sin(omega * t)
        else:
            raise AppVMError(f"unknown excitation {excitation!r}; step or sine")
        result = newmark_transient(
            mesh, model.material, constraints, force_fn, dt=dt, n_steps=n_steps
        )
        self.workspace.put(f"transient:{model.name}:{load_set}", result)
        return result

    def set_gravity(self, load_set: str, gx: float, gy: float) -> None:
        """Add a uniform gravity field to a load set."""
        self._model().load_set(load_set).set_gravity(gx, gy)

    # -- database ("store model in DB/retrieve") ----------------------------------------

    def store_model(self, key: Optional[str] = None) -> int:
        model = self._model()
        return self.database.store(key or model.name, model.to_dict(), kind="model")

    def retrieve_model(self, key: str) -> StructureModel:
        model = StructureModel.from_dict(self.database.retrieve(key))
        self.workspace.put(f"model:{model.name}", model)
        self.current = model
        return model

    def store_result(self, load_set: str, key: Optional[str] = None) -> int:
        result = self.result(load_set)
        return self.database.store(
            key or f"{result.model_name}:{load_set}", result.to_dict(), kind="result"
        )

    # -- display -----------------------------------------------------------------------------

    def show(self, what: str, load_set: Optional[str] = None) -> str:
        model = self._model()
        if what == "model":
            return render_model(model)
        if load_set is None:
            raise AppVMError(f"show {what} needs a load set")
        result = self.result(load_set)
        if what == "displacements":
            return render_displacements(model.require_mesh(), result)
        if what == "stresses":
            return render_stresses(result)
        raise AppVMError(f"cannot show {what!r}")
