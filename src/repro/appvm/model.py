"""Structure models and analysis results — the application user's data
objects.

"Data objects: Structure/substructure model, Grid description,
Node/element description, Load set, Displacements of nodes, Stresses on
elements."  :class:`StructureModel` bundles the first four;
:class:`AnalysisResult` the last two.  Both serialize to plain dicts so
the model database can store them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import AppVMError
from ..fem import Constraints, LoadSet, Material, Mesh


@dataclass
class StructureModel:
    """A named structural model: mesh + material + supports + load sets."""

    name: str
    mesh: Optional[Mesh] = None
    material: Material = field(default_factory=Material)
    constraints: Optional[Constraints] = None
    load_sets: Dict[str, LoadSet] = field(default_factory=dict)

    def require_mesh(self) -> Mesh:
        if self.mesh is None:
            raise AppVMError(f"model {self.name!r} has no grid yet")
        return self.mesh

    def require_constraints(self) -> Constraints:
        if self.constraints is None or not len(self.constraints.fixed_dofs):
            raise AppVMError(f"model {self.name!r} has no supports")
        return self.constraints

    def load_set(self, name: str) -> LoadSet:
        try:
            return self.load_sets[name]
        except KeyError:
            raise AppVMError(
                f"model {self.name!r} has no load set {name!r} "
                f"(have: {sorted(self.load_sets)})"
            ) from None

    def set_mesh(self, mesh: Mesh) -> None:
        self.mesh = mesh
        self.constraints = Constraints(mesh)
        self.load_sets.clear()

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "load_sets": sorted(self.load_sets)}
        if self.mesh is not None:
            out.update(self.mesh.stats())
            out["supports"] = int(len(self.constraints.fixed_dofs)) if self.constraints else 0
        return out

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"name": self.name, "material": _mat_to_dict(self.material)}
        if self.mesh is not None:
            d["mesh"] = {
                "coords": self.mesh.coords.tolist(),
                "dofs_per_node": self.mesh.dofs_per_node,
                "groups": {k: v.tolist() for k, v in self.mesh.groups.items()},
            }
            d["fixed"] = {
                str(dof): val
                for dof, val in zip(
                    self.constraints.fixed_dofs.tolist(),
                    self.constraints.prescribed_values().tolist(),
                )
            }
        d["load_sets"] = {
            name: {
                "nodal": [[n, c, v] for (n, c), v in ls._nodal.items()],
                "gravity": list(ls._gravity),
            }
            for name, ls in self.load_sets.items()
        }
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "StructureModel":
        model = cls(d["name"], material=_mat_from_dict(d["material"]))
        if "mesh" in d:
            mesh = Mesh(np.array(d["mesh"]["coords"]), d["mesh"]["dofs_per_node"])
            for etype, conn in d["mesh"]["groups"].items():
                mesh.add_elements(etype, np.array(conn, dtype=int))
            model.set_mesh(mesh)
            dpn = mesh.dofs_per_node
            for dof_str, val in d.get("fixed", {}).items():
                dof = int(dof_str)
                model.constraints.prescribe(dof // dpn, dof % dpn, val)
        for name, spec in d.get("load_sets", {}).items():
            ls = LoadSet(name)
            for n, c, v in spec["nodal"]:
                ls.add_nodal(n, c, v)
            ls.set_gravity(*spec["gravity"])
            model.load_sets[name] = ls
        return model


def _mat_to_dict(m: Material) -> Dict[str, Any]:
    return {
        "e": m.e, "nu": m.nu, "density": m.density, "thickness": m.thickness,
        "area": m.area, "inertia": m.inertia, "plane_stress": m.plane_stress,
    }


def _mat_from_dict(d: Dict[str, Any]) -> Material:
    return Material(**d)


@dataclass
class AnalysisResult:
    """Displacements of nodes and stresses on elements, plus provenance."""

    model_name: str
    load_set: str
    u: np.ndarray
    stresses: Dict[str, np.ndarray]
    method: str
    iterations: int = 0
    elapsed_cycles: int = 0  # 0 for host-side solves

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model_name": self.model_name,
            "load_set": self.load_set,
            "u": self.u.tolist(),
            "stresses": {k: v.tolist() for k, v in self.stresses.items()},
            "method": self.method,
            "iterations": self.iterations,
            "elapsed_cycles": self.elapsed_cycles,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "AnalysisResult":
        return cls(
            model_name=d["model_name"],
            load_set=d["load_set"],
            u=np.array(d["u"]),
            stresses={k: np.array(v) for k, v in d["stresses"].items()},
            method=d["method"],
            iterations=d.get("iterations", 0),
            elapsed_cycles=d.get("elapsed_cycles", 0),
        )

    def max_displacement(self) -> float:
        return float(np.abs(self.u).max()) if self.u.size else 0.0
