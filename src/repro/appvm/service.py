"""The shared analysis service: one FEM-2 machine, many users.

"Provide multi-user access" — this module is the machine-side half of
that requirement.  Sessions submit solve jobs and get back a
:class:`JobHandle`; the service runs every pending job *concurrently*
as independent root tasks on one machine (the outermost level of
parallelism), then each user reads their result from their handle:

    handle = service.submit("alice", model, "case", workers=4)
    service.run()
    result = handle.result()

When the service's machine carries a :mod:`repro.obs` tracer, every job
opens an ``appvm.job`` span that parents the job's root-task span, so a
profile links user job → tasks → messages → cycles.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict
from typing import Dict, List, Optional

from ..ckpt import from_bytes, to_bytes
from ..errors import AppVMError
from ..fem import (
    collect_parallel_cg,
    recover_stresses,
    register_parallel_cg,
    start_parallel_cg,
)
from ..hardware.machine import MachineConfig
from ..langvm import Fem2Program
from ..lint import lint_program
from .model import AnalysisResult, StructureModel

#: schema tag of MachineService checkpoint blobs
CKPT_SCHEMA = "fem2-ckpt/1"

#: accepted values for MachineService.submit(lint=...)
LINT_MODES = ("off", "warn", "error")


class JobHandle:
    """One submitted solve job; resolves after :meth:`MachineService.run`."""

    __slots__ = ("user", "model", "load_set", "workers", "tol", "tid", "span",
                 "_result", "_service")

    def __init__(self, user: str, model: StructureModel, load_set: str,
                 workers: int, tol: float = 1e-9, service=None) -> None:
        self.user = user
        self.model = model
        self.load_set = load_set
        self.workers = workers
        self.tol = tol
        self.tid: Optional[int] = None
        self.span = None  # appvm.job span when tracing is on
        self._result: Optional[AnalysisResult] = None
        self._service = service

    @property
    def done(self) -> bool:
        return self._result is not None

    def result(self) -> AnalysisResult:
        """The job's analysis result; raises until the service has run."""
        if self._result is None:
            raise AppVMError(
                f"job for {self.user!r} has not run yet (call service.run())"
            )
        return self._result

    def checkpoint(self) -> bytes:
        """Checkpoint the whole service this job runs on (one machine =
        one checkpoint; sibling jobs are captured too).  Resume with
        :meth:`MachineService.resume`."""
        if self._service is None:
            raise AppVMError("job handle is not attached to a service")
        return self._service.checkpoint()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "pending"
        return f"JobHandle({self.user!r}, {self.model.name!r}, {state})"


#: deprecated name — jobs used to be plain SolveJob records; JobHandle
#: keeps the same attributes (user, model, load_set, workers, tid)
SolveJob = JobHandle


class MachineService:
    """Batches user solve requests onto one simulated FEM-2 machine."""

    def __init__(self, config: Optional[MachineConfig] = None, tracer=None,
                 checkpointing: bool = False) -> None:
        self.config = config or MachineConfig(memory_words_per_cluster=16_000_000)
        #: checkpointing turns on runtime journaling so the service's
        #: program can be snapshotted (see :meth:`checkpoint`)
        self.checkpointing = checkpointing
        self.program = Fem2Program(self.config, tracer=tracer,
                                   journal=checkpointing)
        self._pending: List[JobHandle] = []
        self._lint_cache: Dict[tuple, object] = {}
        self.completed_batches = 0

    @property
    def tracer(self):
        return self.program.tracer

    def submit(self, user: str, model: StructureModel, load_set: str, *,
               workers: int = 2, tol: float = 1e-9,
               lint: str = "off") -> JobHandle:
        """Queue one user's solve; nothing runs until :meth:`run`.

        ``lint`` gates the submission on :func:`repro.lint.lint_program`
        over every task type registered on the service's program:
        ``"error"`` rejects a program with error-severity findings
        before any task is spawned, ``"warn"`` emits warnings instead,
        ``"off"`` (the default) skips the check entirely.
        """
        if lint not in LINT_MODES:
            raise AppVMError(
                f"lint must be one of {LINT_MODES}, got {lint!r}")
        if lint != "off":
            self._lint_gate(lint)
        mesh = model.require_mesh()
        constraints = model.require_constraints()
        loads = model.load_set(load_set)
        handle = JobHandle(user, model, load_set, workers, tol=tol, service=self)
        runtime = self.program.runtime
        obs = runtime.obs
        if obs is not None and obs.enabled:
            handle.span = obs.begin(
                "appvm.job", f"{user}/{model.name}", self.program.now,
                user=user, model=model.name, load_set=load_set, workers=workers,
            )
        # parent the job's root task under the job span (restored after
        # spawn so unrelated root tasks stay unparented)
        runtime.obs_root_parent = handle.span
        try:
            handle.tid = start_parallel_cg(
                self.program, mesh, model.material, constraints, loads,
                n_workers=workers, tol=tol,
            )
        finally:
            runtime.obs_root_parent = None
        self._pending.append(handle)
        return handle

    def _lint_gate(self, mode: str) -> None:
        """Run :func:`repro.lint.lint_program` over the registered task
        set (cached per registry state) and enforce its findings."""
        key = tuple(self.program.runtime.registry.types())
        report = self._lint_cache.get(key)
        if report is None:
            report = lint_program(self.program)
            self._lint_cache[key] = report
        report.emit(self.program.runtime.obs, self.program.now)
        if report.clean:
            return
        rendered = "; ".join(f.render() for f in report.findings)
        if mode == "error" and report.errors:
            raise AppVMError(f"program rejected by static analysis: {rendered}")
        warnings.warn(f"static analysis findings: {rendered}",
                      UserWarning, stacklevel=3)

    def run(self) -> List[JobHandle]:
        """Run every submitted job concurrently; resolves their handles."""
        if not self._pending:
            raise AppVMError("no jobs submitted")
        self.program.runtime.run()
        obs = self.program.runtime.obs
        for handle in self._pending:
            info = collect_parallel_cg(self.program, handle.tid)
            stresses = recover_stresses(handle.model.require_mesh(),
                                        handle.model.material, info.u)
            handle._result = AnalysisResult(
                handle.model.name, handle.load_set, info.u, stresses,
                f"fem2-service[{handle.workers}]",
                iterations=info.iterations,
                elapsed_cycles=info.elapsed_cycles,
            )
            if obs is not None and obs.enabled:
                obs.end(handle.span, self.program.now,
                        iterations=info.iterations)
        finished = self._pending
        self._pending = []
        self.completed_batches += 1
        return finished

    # -- checkpoint/resume ---------------------------------------------------

    def checkpoint(self) -> bytes:
        """Serialize the whole service — configuration, pending jobs, and
        the complete machine state — into one blob.

        Task bodies and meshes-as-code are not in the blob; resume
        re-registers each job's solve from its model via
        :func:`repro.fem.register_parallel_cg` before restoring.
        """
        if not self.checkpointing:
            raise AppVMError(
                "service was not built with checkpointing=True"
            )
        jobs = []
        for handle in self._pending:
            jobs.append({
                "user": handle.user,
                "model": handle.model,
                "load_set": handle.load_set,
                "workers": handle.workers,
                "tol": handle.tol,
                "tid": handle.tid,
                "root_name": self.program.runtime.tasks[handle.tid].task_type,
            })
        return to_bytes({
            "schema": CKPT_SCHEMA,
            "config": asdict(self.config),
            "completed_batches": self.completed_batches,
            "jobs": jobs,
            "program": self.program.snapshot(),
        })

    @classmethod
    def resume(cls, blob: bytes, tracer=None) -> "MachineService":
        """Rebuild a service from a :meth:`checkpoint` blob and continue.

        A fresh machine is constructed from the checkpointed config (the
        spare-hardware model), each job's task types are re-registered
        under their original names, and the program state is restored —
        after which :meth:`run` completes the jobs exactly as the
        original machine would have.
        """
        state = from_bytes(blob)
        if state.get("schema") != CKPT_SCHEMA:
            raise AppVMError(
                f"not a MachineService checkpoint (schema={state.get('schema')!r})"
            )
        service = cls(config=MachineConfig(**state["config"]), tracer=tracer,
                      checkpointing=True)
        handles = []
        for job in state["jobs"]:
            model = job["model"]
            root_name = job["root_name"]
            register_parallel_cg(
                service.program,
                model.require_mesh(),
                model.material,
                model.require_constraints(),
                model.load_set(job["load_set"]),
                n_workers=job["workers"],
                tol=job["tol"],
                worker_name=root_name.replace("cg_root", "cg_worker"),
                root_name=root_name,
            )
            handle = JobHandle(job["user"], model, job["load_set"],
                               job["workers"], tol=job["tol"], service=service)
            handle.tid = job["tid"]
            handles.append(handle)
        service.program.restore(state["program"])
        service.completed_batches = state["completed_batches"]
        service._pending = handles
        return service

    # -- deprecated batch API ------------------------------------------------

    def run_batch(self) -> Dict[str, AnalysisResult]:
        """Run all pending jobs; returns ``{user: result}``.

        .. deprecated:: use :meth:`run` and per-job :meth:`JobHandle.result`
           — a dict keyed by user silently loses jobs when one user
           submits twice in a batch.
        """
        warnings.warn(
            "MachineService.run_batch() is deprecated; use run() and "
            "JobHandle.result()", DeprecationWarning, stacklevel=2,
        )
        return {h.user: h.result() for h in self.run()}

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def machine_report(self) -> Dict[str, float]:
        m = self.program.metrics
        return {
            "elapsed_cycles": self.program.now,
            "messages": m.get("comm.messages"),
            "flops": m.get("proc.flops"),
            "tasks": m.get("task.initiated"),
            "utilization": self.program.machine.utilization(),
        }
