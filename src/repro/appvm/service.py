"""The shared analysis service: one FEM-2 machine, many users.

"Provide multi-user access" — this module is the machine-side half of
that requirement.  Sessions submit solve jobs; the service runs every
pending job *concurrently* as independent root tasks on one machine
(the outermost level of parallelism), then hands each user their
result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import AppVMError
from ..fem import (
    collect_parallel_cg,
    recover_stresses,
    start_parallel_cg,
)
from ..hardware.machine import MachineConfig
from ..langvm import Fem2Program
from .model import AnalysisResult, StructureModel


@dataclass
class SolveJob:
    user: str
    model: StructureModel
    load_set: str
    workers: int
    tid: Optional[int] = None


class MachineService:
    """Batches user solve requests onto one simulated FEM-2 machine."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig(memory_words_per_cluster=16_000_000)
        self.program = Fem2Program(self.config)
        self._pending: List[SolveJob] = []
        self.completed_batches = 0

    def submit(self, user: str, model: StructureModel, load_set: str,
               workers: int = 2, tol: float = 1e-9) -> SolveJob:
        """Queue one user's solve; nothing runs until :meth:`run_batch`."""
        mesh = model.require_mesh()
        constraints = model.require_constraints()
        loads = model.load_set(load_set)
        job = SolveJob(user, model, load_set, workers)
        job.tid = start_parallel_cg(
            self.program, mesh, model.material, constraints, loads,
            n_workers=workers, tol=tol,
        )
        self._pending.append(job)
        return job

    def run_batch(self) -> Dict[str, AnalysisResult]:
        """Run every submitted job concurrently; returns per-user results."""
        if not self._pending:
            raise AppVMError("no jobs submitted")
        self.program.runtime.run()
        out: Dict[str, AnalysisResult] = {}
        for job in self._pending:
            info = collect_parallel_cg(self.program, job.tid)
            stresses = recover_stresses(job.model.require_mesh(),
                                        job.model.material, info.u)
            out[job.user] = AnalysisResult(
                job.model.name, job.load_set, info.u, stresses,
                f"fem2-service[{job.workers}]",
                iterations=info.iterations,
                elapsed_cycles=info.elapsed_cycles,
            )
        self._pending.clear()
        self.completed_batches += 1
        return out

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def machine_report(self) -> Dict[str, float]:
        m = self.program.metrics
        return {
            "elapsed_cycles": self.program.now,
            "messages": m.get("comm.messages"),
            "flops": m.get("proc.flops"),
            "tasks": m.get("task.initiated"),
            "utilization": self.program.machine.utilization(),
        }
