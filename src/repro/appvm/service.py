"""The shared analysis service: one FEM-2 machine, many users.

"Provide multi-user access" — this module is the machine-side half of
that requirement.  Sessions submit solve jobs described by a
:class:`~repro.appvm.scheduler.JobSpec` and get back a
:class:`~repro.appvm.scheduler.JobHandle`; the service runs every
pending job *concurrently* as independent root tasks on one machine
(the outermost level of parallelism), then each user reads their
result from their handle:

    spec = JobSpec(user="alice", model=model, load_set="case", workers=4)
    handle = service.submit(spec)
    service.run()
    result = handle.result()

Since the pool rework, :class:`MachineService` is a thin compatibility
wrapper over a one-machine :class:`~repro.appvm.scheduler.ServicePool`
in *persistent* drain mode: one program reused across batches, no job
slots, no quantum slicing — exactly the pre-pool behaviour, traces
included.  Multi-machine scheduling (tenants, quotas, fair share,
preemption) lives on :class:`ServicePool` itself.

When the service's machine carries a :mod:`repro.obs` tracer, every job
opens an ``appvm.job`` span that parents the job's root-task span, so a
profile links user job → tasks → messages → cycles.
"""

from __future__ import annotations

import itertools
import re
import warnings
from typing import Dict, Optional

from ..ckpt import from_bytes
from ..errors import AppVMError
from ..hardware.machine import MachineConfig
from .model import StructureModel
from .scheduler import (
    CKPT_SCHEMA,
    LINT_MODES,
    JobHandle,
    JobSpec,
    JobState,
    ServicePool,
    rebuild_program,
)

__all__ = ["CKPT_SCHEMA", "LINT_MODES", "JobHandle", "JobSpec",
           "MachineService"]


class MachineService:
    """Batches user solve requests onto one simulated FEM-2 machine."""

    def __init__(self, config: Optional[MachineConfig] = None, tracer=None,
                 checkpointing: bool = False, plan_cache=None) -> None:
        self.config = config or MachineConfig(memory_words_per_cluster=16_000_000)
        #: checkpointing turns on runtime journaling so the service's
        #: program can be snapshotted (see :meth:`checkpoint`)
        self.checkpointing = checkpointing
        #: plan_cache shares compiled plans across services in one
        #: process (see :class:`ServicePool`); campaign workers use it
        #: so each point's fresh service skips recompilation when the
        #: registry shape repeats
        self.pool = ServicePool(
            n_machines=1, config=self.config, tracer=tracer,
            quantum=None, machine_slots=None,
            checkpointing=checkpointing, persistent=True,
            plan_cache=plan_cache,
        )

    @property
    def program(self):
        return self.pool.machines[0].program

    @property
    def tracer(self):
        return self.program.tracer

    @property
    def completed_batches(self) -> int:
        return self.pool.completed_batches

    def submit(self, spec: JobSpec = None, model: StructureModel = None,
               load_set: str = None, *, workers: int = 2, tol: float = 1e-9,
               lint: str = "off") -> JobHandle:
        """Queue one solve described by a :class:`JobSpec`; nothing runs
        until :meth:`run`.

        ``spec.lint`` gates the submission on
        :func:`repro.lint.lint_program` over every task type registered
        on the service's program: ``"error"`` rejects a program with
        error-severity findings before any task is spawned, ``"warn"``
        emits warnings instead, ``"off"`` (the default) skips the check.

        .. deprecated:: the positional form
           ``submit(user, model, load_set, workers=..., tol=..., lint=...)``
           still works but warns; build a :class:`JobSpec` instead.
        """
        if isinstance(spec, JobSpec):
            if model is not None or load_set is not None:
                raise AppVMError(
                    "submit(spec) takes only the JobSpec; put model and "
                    "load_set inside it")
            return self.pool.submit(spec)
        warnings.warn(
            "MachineService.submit(user, model, load_set, ...) is "
            "deprecated; pass a JobSpec instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.pool.submit(JobSpec(
            user=spec, model=model, load_set=load_set,
            workers=workers, tol=tol, lint=lint,
        ))

    def run(self):
        """Run every submitted job concurrently; resolves their handles."""
        if self.pool.pending_count == 0:
            raise AppVMError("no jobs submitted")
        return self.pool.run()

    # -- checkpoint/resume ---------------------------------------------------

    def checkpoint(self) -> bytes:
        """Serialize the whole service — configuration, pending jobs, and
        the complete machine state — into one blob.

        Task bodies and meshes-as-code are not in the blob; resume
        re-registers each job's solve from its model via
        :func:`repro.fem.register_parallel_cg` before restoring.
        """
        return self.pool.machines[0].checkpoint(
            completed_batches=self.completed_batches)

    @classmethod
    def resume(cls, blob: bytes, tracer=None) -> "MachineService":
        """Rebuild a service from a :meth:`checkpoint` blob and continue.

        A fresh machine is constructed from the checkpointed config (the
        spare-hardware model), each job's task types are re-registered
        under their original names, and the program state is restored —
        after which :meth:`run` completes the jobs exactly as the
        original machine would have.

        Accepts both whole-service blobs and the per-job machine blobs
        produced by :meth:`JobHandle.checkpoint` or pool preemption —
        they share the ``fem2-ckpt/1`` format.
        """
        state = from_bytes(blob)
        if state.get("schema") != CKPT_SCHEMA:
            raise AppVMError(
                f"not a MachineService checkpoint (schema={state.get('schema')!r})"
            )
        config = MachineConfig(**state["config"])
        service = cls(config=config, tracer=tracer, checkpointing=True)
        pool = service.pool
        machine = pool.machines[0]
        machine.program = rebuild_program(config, state, tracer=tracer)
        machine.dirty = True
        handles = []
        for job in state["jobs"]:
            spec = JobSpec(
                user=job["user"], model=job["model"],
                load_set=job["load_set"], workers=job["workers"],
                tol=job["tol"], priority=job.get("priority", 0),
                tenant=job.get("tenant", "default"),
            )
            handle = JobHandle(spec, owner=pool, job_id=next(pool._ids))
            handle.tid = job["tid"]
            handle.state = JobState.RUNNING
            handle.machine = machine
            pool.handles.append(handle)
            pool.tenants.get(spec.tenant).in_flight += 1
            handles.append(handle)
        machine.jobs = handles
        pool.completed_batches = state["completed_batches"]
        # keep post-resume submissions clear of the restored task names
        max_id = len(handles)
        for job in state["jobs"]:
            tagged = re.search(r"\.j(\d+)$", job["root_name"])
            if tagged:
                max_id = max(max_id, int(tagged.group(1)))
        pool._ids = itertools.count(max_id + 1)
        return service

    @property
    def pending_count(self) -> int:
        return self.pool.pending_count

    def machine_report(self) -> Dict[str, float]:
        m = self.program.metrics
        return {
            "elapsed_cycles": self.program.now,
            "messages": m.get("comm.messages"),
            "flops": m.get("proc.flops"),
            "tasks": m.get("task.initiated"),
            "utilization": self.program.machine.utilization(),
        }
