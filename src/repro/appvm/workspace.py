"""User workspaces: local, session-lifetime data.

"Storage management: Dynamic storage allocation for models, results,
workspaces, etc.; Data movement between data base and workspace."  A
workspace accounts for its contents in words so workstation sessions
have a storage figure of their own.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import AppVMError


def _object_words(obj: Any) -> int:
    """Approximate size of a workspace object in words."""
    from ..sysvm.storage import words_of

    try:
        return words_of(obj)
    except Exception:
        pass
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        try:
            return words_of(to_dict())
        except Exception:
            return 64
    return 64


class Workspace:
    """Named slots of user-local data with storage accounting."""

    def __init__(self, owner: str = "user") -> None:
        self.owner = owner
        self._slots: Dict[str, Any] = {}
        self._words: Dict[str, int] = {}

    def put(self, name: str, obj: Any) -> None:
        self._words[name] = _object_words(obj)
        self._slots[name] = obj

    def get(self, name: str) -> Any:
        try:
            return self._slots[name]
        except KeyError:
            raise AppVMError(
                f"workspace of {self.owner!r} has no object {name!r}"
            ) from None

    def drop(self, name: str) -> None:
        if name not in self._slots:
            raise AppVMError(f"workspace has no object {name!r}")
        del self._slots[name]
        del self._words[name]

    def names(self) -> List[str]:
        return sorted(self._slots)

    def __contains__(self, name: str) -> bool:
        return name in self._slots

    def used_words(self) -> int:
        return sum(self._words.values())
