"""The interactive command language.

"Sequence control: Direct interpretation of user commands."  Each line
is parsed and executed immediately against a
:class:`~repro.appvm.session.WorkstationSession`; the interpreter
returns the text the workstation would display.

Command summary (also printed by ``help``)::

    new NAME                                define structure model
    material e=2e11 nu=0.3 [thickness=...]  set material properties
    grid NX NY [LX LY] [quad4|tri3]         generate grid
    truss N [PANEL HEIGHT]                  generate Pratt truss
    frame cantilever N [LENGTH]             generate beam cantilever
    frame portal STORIES BAYS               generate portal frame
    fix x=VAL | fix y=VAL | fix node N      add supports
    loadset NAME                            define a load set
    load SET node N fx|fy|m VALUE           add a nodal load
    lineload SET x=VAL|y=VAL fx|fy VALUE    load every node on a line
    gravity SET GX GY                       uniform gravity on a load set
    solve SET [method=M] [engine=host|fem2] [workers=K]
    frequencies [N] [consistent]            natural frequencies (modal)
    transient SET DT STEPS [sine FREQ]      time-history analysis
    quality                                 mesh quality summary
    show model|displacements|stresses [SET]
    store [KEY]                             store model in database
    restore KEY                             retrieve model from database
    db                                      list database contents
    help                                    this text
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AppVMError, CommandError, Fem2Error
from .session import WorkstationSession

_COMP = {"fx": 0, "fy": 1, "m": 2, "ux": 0, "uy": 1, "rz": 2}


def _num(token: str, what: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise CommandError(f"{what}: expected a number, got {token!r}") from None


def _split_kwargs(tokens: List[str]) -> Tuple[List[str], Dict[str, str]]:
    pos, kw = [], {}
    for t in tokens:
        if "=" in t:
            key, _, val = t.partition("=")
            kw[key] = val
        else:
            pos.append(t)
    return pos, kw


class CommandInterpreter:
    """Direct interpreter for the workstation command language."""

    def __init__(self, session: Optional[WorkstationSession] = None) -> None:
        self.session = session or WorkstationSession()
        self.commands_run = 0
        self._handlers: Dict[str, Callable[[List[str]], str]] = {
            "new": self._cmd_new,
            "material": self._cmd_material,
            "grid": self._cmd_grid,
            "truss": self._cmd_truss,
            "frame": self._cmd_frame,
            "fix": self._cmd_fix,
            "loadset": self._cmd_loadset,
            "load": self._cmd_load,
            "lineload": self._cmd_lineload,
            "gravity": self._cmd_gravity,
            "solve": self._cmd_solve,
            "frequencies": self._cmd_frequencies,
            "transient": self._cmd_transient,
            "quality": self._cmd_quality,
            "show": self._cmd_show,
            "store": self._cmd_store,
            "restore": self._cmd_restore,
            "db": self._cmd_db,
            "help": self._cmd_help,
        }

    # -- driver -----------------------------------------------------------

    def execute(self, line: str) -> str:
        """Interpret one command line; returns display text."""
        line = line.strip()
        if not line or line.startswith("#"):
            return ""
        tokens = shlex.split(line)
        verb = tokens[0].lower()
        handler = self._handlers.get(verb)
        if handler is None:
            raise CommandError(f"unknown command {verb!r} (try 'help')")
        self.commands_run += 1
        try:
            return handler(tokens[1:])
        except CommandError:
            raise
        except Fem2Error as exc:
            raise CommandError(str(exc)) from exc

    def run_script(self, text: str) -> List[str]:
        """Interpret a multi-line script; returns non-empty outputs."""
        outputs = []
        for line in text.splitlines():
            out = self.execute(line)
            if out:
                outputs.append(out)
        return outputs

    # -- handlers ------------------------------------------------------------

    def _cmd_new(self, args: List[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: new NAME")
        self.session.define_structure(args[0])
        return f"model {args[0]} defined"

    def _cmd_material(self, args: List[str]) -> str:
        _, kw = _split_kwargs(args)
        if not kw:
            raise CommandError("usage: material e=... nu=... [thickness=...]")
        props = {k: _num(v, f"material {k}") for k, v in kw.items()}
        self.session.set_material(**props)
        return f"material set ({', '.join(f'{k}={v:g}' for k, v in props.items())})"

    def _cmd_grid(self, args: List[str]) -> str:
        pos, _ = _split_kwargs(args)
        kind = "quad4"
        if pos and pos[-1] in ("quad4", "tri3"):
            kind = pos.pop()
        if len(pos) not in (2, 4):
            raise CommandError("usage: grid NX NY [LX LY] [quad4|tri3]")
        nx, ny = int(_num(pos[0], "nx")), int(_num(pos[1], "ny"))
        lx, ly = (1.0, 1.0) if len(pos) == 2 else (_num(pos[2], "lx"), _num(pos[3], "ly"))
        self.session.generate_grid(nx, ny, lx, ly, kind)
        mesh = self.session.current.mesh
        return f"grid generated: {mesh.n_nodes} nodes, {mesh.n_elements} {kind} elements"

    def _cmd_truss(self, args: List[str]) -> str:
        if not args:
            raise CommandError("usage: truss N [PANEL HEIGHT]")
        n = int(_num(args[0], "panels"))
        panel = _num(args[1], "panel") if len(args) > 1 else 1.0
        height = _num(args[2], "height") if len(args) > 2 else 1.0
        self.session.generate_truss(n, panel, height)
        mesh = self.session.current.mesh
        return f"truss generated: {mesh.n_nodes} nodes, {mesh.n_elements} bars"

    def _cmd_frame(self, args: List[str]) -> str:
        if not args:
            raise CommandError("usage: frame cantilever N [L] | frame portal S B")
        kind = args[0]
        if kind == "cantilever":
            n = int(_num(args[1], "elements"))
            length = _num(args[2], "length") if len(args) > 2 else 1.0
            self.session.generate_frame("cantilever", n, length)
        elif kind == "portal":
            self.session.generate_frame(
                "portal", int(_num(args[1], "stories")), int(_num(args[2], "bays"))
            )
        else:
            raise CommandError(f"unknown frame kind {kind!r}")
        mesh = self.session.current.mesh
        return f"frame generated: {mesh.n_nodes} nodes, {mesh.n_elements} beams"

    def _cmd_fix(self, args: List[str]) -> str:
        pos, kw = _split_kwargs(args)
        if "x" in kw or "y" in kw:
            n = self.session.fix_line(
                x=_num(kw["x"], "x") if "x" in kw else None,
                y=_num(kw["y"], "y") if "y" in kw else None,
            )
            return f"fixed {n} nodes"
        if pos and pos[0] == "node":
            node = int(_num(pos[1], "node"))
            comps = [_COMP[c] for c in pos[2:]] if len(pos) > 2 else None
            self.session.fix_nodes([node], comps)
            return f"fixed node {node}"
        raise CommandError("usage: fix x=VAL | fix y=VAL | fix node N [ux uy rz]")

    def _cmd_loadset(self, args: List[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: loadset NAME")
        self.session.define_load_set(args[0])
        return f"load set {args[0]} defined"

    def _cmd_load(self, args: List[str]) -> str:
        if len(args) != 5 or args[1] != "node":
            raise CommandError("usage: load SET node N fx|fy|m VALUE")
        name, node, comp_name, value = args[0], args[2], args[3], args[4]
        comp = _COMP.get(comp_name)
        if comp is None:
            raise CommandError(f"unknown load component {comp_name!r}")
        self.session.add_load(
            name, int(_num(node, "node")), comp, _num(value, "value")
        )
        return f"load added to {name}"

    def _cmd_lineload(self, args: List[str]) -> str:
        pos, kw = _split_kwargs(args)
        if len(pos) != 3 or not ("x" in kw or "y" in kw):
            raise CommandError("usage: lineload SET x=VAL|y=VAL fx|fy VALUE")
        name, comp_name, value = pos
        comp = _COMP.get(comp_name)
        if comp is None:
            raise CommandError(f"unknown load component {comp_name!r}")
        n = self.session.add_line_load(
            name,
            comp,
            _num(value, "value"),
            x=_num(kw["x"], "x") if "x" in kw else None,
            y=_num(kw["y"], "y") if "y" in kw else None,
        )
        return f"loaded {n} nodes"

    def _cmd_gravity(self, args: List[str]) -> str:
        if len(args) != 3:
            raise CommandError("usage: gravity SET GX GY")
        self.session.set_gravity(
            args[0], _num(args[1], "gx"), _num(args[2], "gy")
        )
        return f"gravity set on {args[0]}"

    def _cmd_frequencies(self, args: List[str]) -> str:
        pos, _ = _split_kwargs(args)
        lumped = True
        if pos and pos[-1] == "consistent":
            lumped = False
            pos = pos[:-1]
        n_modes = int(_num(pos[0], "modes")) if pos else 4
        result = self.session.modal(n_modes=n_modes, lumped=lumped)
        lines = [
            f"mode {i + 1}: {f:.4f} Hz"
            for i, f in enumerate(result.frequencies)
        ]
        kind = "lumped" if lumped else "consistent"
        return f"natural frequencies ({kind} mass):\n" + "\n".join(lines)

    def _cmd_transient(self, args: List[str]) -> str:
        if len(args) < 3:
            raise CommandError("usage: transient SET DT STEPS [sine FREQ]")
        name = args[0]
        dt = _num(args[1], "dt")
        n_steps = int(_num(args[2], "steps"))
        excitation, freq = "step", 0.0
        if len(args) >= 4:
            if args[3] != "sine" or len(args) != 5:
                raise CommandError("usage: transient SET DT STEPS [sine FREQ]")
            excitation = "sine"
            freq = _num(args[4], "frequency")
        result = self.session.transient(name, dt, n_steps,
                                        excitation=excitation,
                                        frequency_hz=freq)
        return (
            f"transient {name}: {n_steps} steps of {dt:g}s ({excitation}), "
            f"peak |u| = {result.peak_displacement():.4e}"
        )

    def _cmd_quality(self, args: List[str]) -> str:
        q = self.session.check_quality()
        return (
            f"mesh quality: {q['elements']} elements, worst aspect "
            f"{q['worst_aspect']:.2f}, worst min angle "
            f"{q['worst_min_angle']:.1f} deg"
        )

    def _cmd_solve(self, args: List[str]) -> str:
        pos, kw = _split_kwargs(args)
        if len(pos) != 1:
            raise CommandError("usage: solve SET [method=M] [engine=host|fem2] [workers=K]")
        result = self.session.solve(
            pos[0],
            method=kw.get("method", "sparse_lu"),
            engine=kw.get("engine", "host"),
            workers=int(kw.get("workers", 4)),
        )
        extra = f", {result.elapsed_cycles} cycles" if result.elapsed_cycles else ""
        return (
            f"solved {pos[0]} with {result.method}: max |u| = "
            f"{result.max_displacement():.4e}{extra}"
        )

    def _cmd_show(self, args: List[str]) -> str:
        if not args:
            raise CommandError("usage: show model|displacements|stresses [SET]")
        return self.session.show(args[0], args[1] if len(args) > 1 else None)

    def _cmd_store(self, args: List[str]) -> str:
        version = self.session.store_model(args[0] if args else None)
        return f"stored (version {version})"

    def _cmd_restore(self, args: List[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: restore KEY")
        model = self.session.retrieve_model(args[0])
        return f"model {model.name} retrieved"

    def _cmd_db(self, args: List[str]) -> str:
        keys = self.session.database.keys()
        if not keys:
            return "database is empty"
        return "\n".join(
            f"{k} (v{self.session.database.version(k)}, {self.session.database.kind(k)})"
            for k in keys
        )

    def _cmd_help(self, args: List[str]) -> str:
        return __doc__.split("::", 1)[1].strip()
