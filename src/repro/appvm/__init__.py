"""Layer 1 of the FEM-2 design: the application user's virtual machine.

The structural engineer's interactive workstation: structure models and
results as data objects, a shared model database, per-user workspaces,
and a directly-interpreted command language.
"""

from .model import AnalysisResult, StructureModel
from .database import DBEntry, ModelDatabase
from .workspace import Workspace
from .display import render_displacements, render_model, render_stresses, render_table
from .session import WorkstationSession
from .commands import CommandInterpreter
from .scheduler import JobSpec, JobState, ServicePool, Tenant
from .service import JobHandle, MachineService

__all__ = [
    "AnalysisResult",
    "StructureModel",
    "DBEntry",
    "ModelDatabase",
    "Workspace",
    "render_displacements",
    "render_model",
    "render_stresses",
    "render_table",
    "WorkstationSession",
    "CommandInterpreter",
    "JobHandle",
    "JobSpec",
    "JobState",
    "MachineService",
    "ServicePool",
    "Tenant",
]
