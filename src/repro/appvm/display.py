"""Text rendering of models and results ("display the results").

The FEM-2 workstation of 1983 would have driven a graphics terminal;
here the display device is monospaced text, which the examples print
and the session tests assert against.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..fem import Mesh, von_mises_plane
from .model import AnalysisResult, StructureModel


def render_model(model: StructureModel) -> str:
    s = model.summary()
    lines = [f"model {s['name']}"]
    for key in sorted(s):
        if key != "name":
            lines.append(f"  {key:<18} {s[key]}")
    return "\n".join(lines)


def render_displacements(
    mesh: Mesh, result: AnalysisResult, top: int = 10
) -> str:
    """The *top* nodes by displacement magnitude, as a table."""
    d = mesh.dofs_per_node
    u = result.u.reshape(-1, d)
    mag = np.linalg.norm(u[:, :2], axis=1)
    order = np.argsort(-mag)[:top]
    comps = ["ux", "uy", "rz"][:d]
    header = f"{'node':>6} {'x':>10} {'y':>10} " + " ".join(f"{c:>12}" for c in comps)
    lines = [f"displacements ({result.model_name}/{result.load_set}):", header]
    for n in order:
        coords = mesh.coords[n]
        vals = " ".join(f"{u[n, i]:>12.4e}" for i in range(d))
        lines.append(f"{n:>6} {coords[0]:>10.3f} {coords[1]:>10.3f} {vals}")
    lines.append(f"max |u| = {result.max_displacement():.6e}")
    return "\n".join(lines)


def render_stresses(result: AnalysisResult, top: int = 5) -> str:
    lines = [f"stresses ({result.model_name}/{result.load_set}):"]
    for etype, s in result.stresses.items():
        if not s.size:
            continue
        if s.shape[1] == 3:  # plane components -> report von Mises
            vm = von_mises_plane(s)
            order = np.argsort(-vm)[:top]
            lines.append(f"  {etype}: top von Mises")
            for e in order:
                lines.append(f"    element {e:>5}  svm = {vm[e]:.4e}")
        else:
            peak = np.abs(s).max(axis=1)
            order = np.argsort(-peak)[:top]
            lines.append(f"  {etype}: top |component|")
            for e in order:
                lines.append(f"    element {e:>5}  s = {peak[e]:.4e}")
    return "\n".join(lines)


def render_table(headers: List[str], rows: List[List]) -> str:
    """Generic fixed-width table used by benches and the command shell."""
    widths = [len(h) for h in headers]
    txt_rows = []
    for row in rows:
        txt = [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
        widths = [max(w, len(t)) for w, t in zip(widths, txt)]
        txt_rows.append(txt)
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(r) for r in txt_rows)
    return "\n".join(out)
