"""Fault injection and reconfiguration.

The paper's architecture requirements include "provide reconfigurability
to isolate faulty hardware components".  The injector fails PEs, links,
or whole clusters at scheduled simulation times; reconfiguration removes
the faulty components from routing and dispatch so the rest of the
machine keeps working.  Experiment E7 measures throughput with
reconfiguration on versus off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import FaultError
from .machine import Machine
from .pe import PEState


@dataclass
class FaultRecord:
    time: int
    kind: str            # "pe" | "link" | "cluster"
    target: Tuple        # (cluster, pe) or (a, b) or (cluster,)


RECOVERY_MODES = ("restart", "checkpoint")


class FaultInjector:
    """Injects faults into a machine, immediately or at a future time.

    Two recovery models are supported.  ``recovery="restart"`` (the
    paper's original task-farm model) restarts interrupted tasks from
    the beginning on surviving hardware.  ``recovery="checkpoint"``
    instead *halts* the engine at the fault and sets
    :attr:`needs_recovery`; the driver then restores the last
    checkpoint into a fresh program (see :class:`repro.ckpt.Checkpointer`)
    and deterministically replays, losing only the work since that
    checkpoint.
    """

    def __init__(
        self,
        machine: Machine,
        reconfigure: bool = True,
        runtime=None,
        recovery: str = "restart",
    ) -> None:
        if recovery not in RECOVERY_MODES:
            raise FaultError(
                f"unknown recovery mode {recovery!r}; one of {RECOVERY_MODES}"
            )
        self.machine = machine
        #: when False, faulty components stay in the routing/dispatch sets,
        #: modelling a machine without the paper's reconfigurability.
        self.reconfigure = reconfigure
        #: a ``repro.sysvm.runtime.Runtime`` to notify, so interrupted
        #: tasks are restarted (PE fault) or reported lost (cluster fault)
        self.runtime = runtime
        self.recovery = recovery
        #: set when a fault occurred under checkpoint recovery; the run
        #: loop has been halted and a restore is required to continue
        self.needs_recovery = False
        self.log: List[FaultRecord] = []

    # -- immediate faults ----------------------------------------------------

    def fail_pe(self, cluster_id: int, pe_index: int) -> None:
        pe = self.machine.cluster(cluster_id).pes[pe_index]
        if pe.is_kernel:
            # losing the kernel PE takes the whole cluster down
            raise FaultError(
                "kernel PE failure takes the cluster down; use fail_cluster"
            )
        pe.fail()
        self.log.append(FaultRecord(self.machine.now, "pe", (cluster_id, pe_index)))
        if self.recovery == "checkpoint":
            self._halt_for_recovery()
        elif self.runtime is not None and self.reconfigure:
            self.runtime.recover_pe_failure(pe)

    def fail_link(self, a: int, b: int) -> None:
        self.machine.network.fail_link(a, b)
        self.log.append(FaultRecord(self.machine.now, "link", (a, b)))

    def fail_cluster(self, cluster_id: int) -> None:
        cluster = self.machine.cluster(cluster_id)
        # the queue is about to be dropped; capture it first so recovery
        # can report tasks whose INITIATE died in the queue
        dropped = list(cluster.input_queue)
        cluster.fail()
        if self.reconfigure:
            self.machine.network.fail_cluster(cluster_id)
        self.log.append(FaultRecord(self.machine.now, "cluster", (cluster_id,)))
        if self.recovery == "checkpoint":
            self._halt_for_recovery()
        elif self.runtime is not None:
            self.runtime.recover_cluster_failure(cluster_id, dropped=dropped)

    def _halt_for_recovery(self) -> None:
        self.needs_recovery = True
        self.machine.engine.halt()
        self.machine.metrics.incr("fault.halts")

    def repair_pe(self, cluster_id: int, pe_index: int) -> None:
        self.machine.cluster(cluster_id).pes[pe_index].repair()

    # -- scheduled faults -------------------------------------------------------

    def schedule_pe_failure(self, at: int, cluster_id: int, pe_index: int) -> None:
        self.machine.engine.schedule_at(at, self.fail_pe, cluster_id, pe_index)

    def schedule_cluster_failure(self, at: int, cluster_id: int) -> None:
        self.machine.engine.schedule_at(at, self.fail_cluster, cluster_id)

    def schedule_link_failure(self, at: int, a: int, b: int) -> None:
        self.machine.engine.schedule_at(at, self.fail_link, a, b)

    # -- state ----------------------------------------------------------------

    def healthy_worker_count(self) -> int:
        return sum(
            1
            for c in self.machine.live_clusters()
            for pe in c.worker_pes
            if pe.state is not PEState.FAULTY
        )

    def summary(self) -> str:
        lines = [f"{len(self.log)} faults injected"]
        for rec in self.log:
            lines.append(f"  t={rec.time}: {rec.kind} {rec.target}")
        return "\n".join(lines)
