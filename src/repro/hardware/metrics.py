"""Measurement infrastructure: the counters the paper says matter.

"Simulations to measure the storage, processing, and communication
patterns in typical FEM-2 applications ... are of particular
importance."  Every simulator component reports through a shared
:class:`MetricsRegistry`, so one object answers the three questions:
how many cycles of processing, how many words of storage, how many
messages/words of communication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Histogram:
    """Streaming summary of a distribution: count/sum/min/max/mean/variance.

    Uses Welford's online algorithm; no samples are retained, so traces
    of millions of messages cost O(1) memory.
    """

    __slots__ = ("count", "total", "min", "max", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "std": self.std,
        }

    def snapshot(self) -> Dict[str, float]:
        """Exact internal state (``_m2`` included, so restore is
        bit-identical — recomputing it from ``std`` would lose bits)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self._mean,
            "m2": self._m2,
        }

    def restore(self, state: Dict[str, float]) -> None:
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"]
        self.max = state["max"]
        self._mean = state["mean"]
        self._m2 = state["m2"]

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (parallel-merge of Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.total = other.count, other.total
            self.min, self.max = other.min, other.max
            self._mean, self._m2 = other._mean, other._m2
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total_n = n1 + n2
        self._m2 = self._m2 + other._m2 + delta * delta * n1 * n2 / total_n
        self._mean = (self._mean * n1 + other._mean * n2) / total_n
        self.count = total_n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


@dataclass
class BusyTracker:
    """Tracks utilization of a resource (a PE) over simulated time."""

    busy_cycles: int = 0
    _busy_since: Optional[int] = None

    def begin(self, now: int) -> None:
        if self._busy_since is not None:
            raise ValueError("resource already busy")
        self._busy_since = now

    def end(self, now: int) -> None:
        if self._busy_since is None:
            raise ValueError("resource not busy")
        self.busy_cycles += now - self._busy_since
        self._busy_since = None

    def is_busy(self) -> bool:
        return self._busy_since is not None

    def snapshot(self) -> Dict[str, Optional[int]]:
        return {"busy_cycles": self.busy_cycles, "busy_since": self._busy_since}

    def restore(self, state: Dict[str, Optional[int]]) -> None:
        self.busy_cycles = state["busy_cycles"]
        self._busy_since = state["busy_since"]

    def utilization(self, elapsed: int) -> float:
        return self.busy_cycles / elapsed if elapsed else 0.0


class Counter:
    """One slab cell: a mutable float the registry hands out by name.

    Hot call sites (PE burst completion, runtime message send) fetch
    their cell once via :meth:`MetricsRegistry.counter` and then bump
    ``cell.value`` directly — one attribute store per event instead of a
    dict hash + method call.  A cell stays registered for the life of
    the registry generation; see :attr:`MetricsRegistry.version`.
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class MetricsRegistry:
    """Dotted-name counters and histograms shared by all components.

    Counter names follow ``<area>.<detail>`` — e.g. ``proc.flops``,
    ``comm.messages.initiate_task``, ``mem.hwm.cluster0`` — so reports
    can aggregate by prefix.

    Counters are slab-backed: each name maps to a :class:`Counter` cell
    created lazily on first increment, so a counter appears in
    :meth:`counters` exactly when it first records something (same
    observable behavior as the old ``defaultdict`` form, minus the
    per-event churn).  Components may cache cells via :meth:`counter`
    and histograms via :meth:`hist`; cached references must be
    revalidated against :attr:`version`, which moves whenever
    :meth:`restore` or :meth:`reset` rebuilds the slab.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: cache-invalidation token for cells handed out by
        #: :meth:`counter`/:meth:`hist`.  restore() and reset() replace
        #: the underlying slabs, so they bump this; a call site holding
        #: cells refetches when its remembered version differs.
        self.version = 0

    # -- cells -------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get-or-create the cell for *name* (registers it at 0.0)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def hist(self, name: str) -> Histogram:
        """Get-or-create the registered histogram for *name*."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # -- recording ---------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        c = self._counters.get(name)
        if c is None:
            self._counters[name] = Counter(amount)
        else:
            c.value += amount

    def set_max(self, name: str, value: float) -> None:
        """Record a high-water mark."""
        c = self._counters.get(name)
        if c is None:
            self._counters[name] = Counter(value)
        elif value > c.value:
            c.value = value

    def get(self, name: str, default: float = 0.0) -> float:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def observe(self, name: str, value: float) -> None:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        h.observe(value)

    def histogram(self, name: str) -> Histogram:
        """Read-only lookup: the registered histogram, or an empty
        placeholder (never registered) when *name* has not observed."""
        return self._histograms.get(name, Histogram())

    # -- reporting ---------------------------------------------------------

    def by_prefix(self, prefix: str) -> Dict[str, float]:
        """All counters under a dotted prefix, keys relative to it."""
        p = prefix if prefix.endswith(".") else prefix + "."
        return {
            k[len(p):]: c.value for k, c in self._counters.items() if k.startswith(p)
        }

    def total(self, prefix: str) -> float:
        return sum(self.by_prefix(prefix).values())

    def counters(self) -> Dict[str, float]:
        return {k: c.value for k, c in self._counters.items()}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def reset(self) -> None:
        self._counters = {}
        self._histograms = {}
        self.version += 1

    def flat(self) -> Dict[str, float]:
        """A flat summary including histogram summaries (dotted keys)."""
        out = {k: c.value for k, c in self._counters.items()}
        for name, h in self._histograms.items():
            for k, v in h.summary().items():
                out[f"{name}.{k}"] = v
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Exact structured state for checkpoint/restore (use
        :meth:`flat` for the lossy reporting form)."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "histograms": {n: h.snapshot() for n, h in self._histograms.items()},
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild both slabs in the snapshot's insertion order (the
        order is part of checkpoint-blob identity) and invalidate every
        cell previously handed out."""
        self._counters = {k: Counter(v) for k, v in state["counters"].items()}
        self._histograms = {}
        for name, hstate in state["histograms"].items():
            h = self._histograms[name] = Histogram()
            h.restore(hstate)
        self.version += 1

    def report(self, prefixes: Iterable[str] = ()) -> str:
        """Human-readable dump, optionally restricted to prefixes."""
        keys = sorted(self._counters)
        if prefixes:
            keys = [k for k in keys if any(k.startswith(p) for p in prefixes)]
        width = max((len(k) for k in keys), default=10)
        lines = [f"{k:<{width}}  {self._counters[k].value:>14,.0f}" for k in keys]
        for name in sorted(self._histograms):
            if prefixes and not any(name.startswith(p) for p in prefixes):
                continue
            s = self._histograms[name].summary()
            lines.append(
                f"{name:<{width}}  n={s['count']:.0f} mean={s['mean']:.1f} "
                f"max={s['max']:.0f} sum={s['sum']:.0f}"
            )
        return "\n".join(lines)
