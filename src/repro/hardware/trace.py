"""Event tracing for simulator debugging and pattern analysis.

A :class:`TraceRecorder` keeps a bounded, filterable log of simulator
events (message sends, dispatches, task state changes) tagged with the
simulated time.  Traces back the paper's call for studying "the
storage, processing, and communication *patterns*" — not just totals.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    time: int
    kind: str
    detail: tuple  # sorted (key, value) pairs; hashable for counting

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        return default


class TraceRecorder:
    """Bounded in-memory event trace.

    ``capacity`` bounds memory for long simulations (oldest entries are
    dropped); ``enabled`` lets benchmarks switch tracing off entirely so
    its cost never contaminates timing runs.
    """

    def __init__(self, capacity: int = 100_000, enabled: bool = True) -> None:
        self.capacity = capacity
        self.enabled = enabled
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def record(self, time: int, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(time, kind, tuple(sorted(detail.items()))))
        self.recorded += 1

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def count_by_kind(self) -> Dict[str, int]:
        return dict(Counter(e.kind for e in self._events))

    def between(self, t0: int, t1: int) -> List[TraceEvent]:
        return [e for e in self._events if t0 <= e.time < t1]

    def filter(self, pred: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [e for e in self._events if pred(e)]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
