"""The fast-path simulation engine: a calendar (bucket) event queue.

Profiling the reference :class:`~repro.hardware.events.EventEngine`
shows its cost is not any one operation but per-event *overhead*: a
Python-level ``Event.__lt__`` on every heap compare, a ``step()`` call
and a ``_peek()`` scan per event, and a heap push/pop even when many
events share a cycle (burst completions and kernel work routinely land
on the same cycle).  :class:`FastEventEngine` removes all of it while
preserving the reference engine's observable semantics exactly:

* events live in per-cycle **buckets** (a dict keyed by absolute time
  plus a min-heap of plain ints for the distinct times), so scheduling
  never compares :class:`Event` objects;
* the run loop drains one bucket as a batch — same-cycle events
  (e.g. several PEs' burst completions) dispatch as a run without
  re-entering the scheduler, and events scheduled *at* the current
  cycle by a handler join the tail of the live bucket;
* cancelled events are skipped at dispatch, exactly as the reference
  engine skips them at pop.

Equivalence contract (enforced by ``repro.perf`` and
``tests/test_engine_equivalence.py``): identical dispatch order
(time, then scheduling seq), identical final clock and
``events_processed``, and a :meth:`snapshot` byte-identical to the
reference engine's — checkpoints taken under either engine restore
into the other.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..errors import SimulationError
from .events import Event

__all__ = ["FastEventEngine"]


class FastEventEngine:
    """Calendar-queue drop-in for :class:`~repro.hardware.events.EventEngine`.

    Same public surface — ``schedule``/``schedule_at``/``step``/``run``/
    ``pending``/``idle``/``halt``/``snapshot``/``restore`` — and the
    same deterministic (time, seq) dispatch order; only the internal
    queue representation differs.
    """

    __slots__ = (
        "now",
        "events_processed",
        "halted",
        "tracer",
        "_seq",
        "_buckets",
        "_times",
    )

    #: queue internals are rebuilt by each layer re-issuing its pending
    #: events from descriptors on restore (same contract as the
    #: reference engine); the tracer is re-attached by the Machine.
    _snapshot_exempt = ("tracer", "_buckets", "_times")

    def __init__(self) -> None:
        self.now: int = 0
        self.events_processed = 0
        #: set by :meth:`halt`; run loops drain no further events until
        #: cleared (checkpointed fault recovery stops a doomed run here)
        self.halted = False
        #: optional span tracer (duck-typed; see repro.obs)
        self.tracer = None
        self._seq = 0
        #: absolute cycle -> FIFO of events at that cycle (seq order,
        #: because seq increases monotonically and appends are in
        #: scheduling order)
        self._buckets: Dict[int, Deque[Event]] = {}
        #: min-heap of the distinct cycles present in ``_buckets``
        #: (plain ints — no Python-level comparisons of Event objects)
        self._times: List[int] = []

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run *delay* cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + int(delay), fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute cycle count."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        time = int(time)
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((ev,))
            heapq.heappush(self._times, time)
        else:
            bucket.append(ev)
        return ev

    # -- dispatch ----------------------------------------------------------

    def _next_bucket(self) -> Optional[Deque[Event]]:
        """The non-empty bucket at the earliest cycle, pruning empties.

        Invariant: a time is on the heap iff it has a bucket entry, so
        pruning always pops both together.
        """
        times = self._times
        buckets = self._buckets
        while times:
            bucket = buckets.get(times[0])
            if bucket:
                return bucket
            del buckets[times[0]]
            heapq.heappop(times)
        return None

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while True:
            bucket = self._next_bucket()
            if bucket is None:
                return False
            t = self._times[0]
            while bucket:
                ev = bucket.popleft()
                if ev.cancelled:
                    continue
                self.now = t
                self.events_processed += 1
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.point(
                        "hw.event",
                        getattr(ev.fn, "__qualname__", "event"),
                        t,
                        aggregate_only=True,
                    )
                ev.fn(*ev.args)
                return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until* cycles pass, or
        *max_events* fire.  Returns the number of events processed.

        This is the hot loop: one heap access per *distinct cycle*, then
        a straight drain of that cycle's bucket — burst completions and
        kernel work landing on the same cycle dispatch as a batch, and
        events a handler schedules at the current cycle join the live
        bucket's tail (still seq order).
        """
        processed = 0
        while not self.halted:
            bucket = self._next_bucket()
            if bucket is None:
                break
            if max_events is not None and processed >= max_events:
                break
            t = self._times[0]
            if until is not None and t > until:
                self.now = until
                break
            while bucket:
                ev = bucket.popleft()
                if ev.cancelled:
                    continue
                # clock moves only when a live event dispatches, exactly
                # like the reference (an all-cancelled bucket is a no-op)
                self.now = t
                self.events_processed += 1
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.point(
                        "hw.event",
                        getattr(ev.fn, "__qualname__", "event"),
                        t,
                        aggregate_only=True,
                    )
                ev.fn(*ev.args)
                processed += 1
                if self.halted:
                    break
                if max_events is not None and processed >= max_events:
                    break
        if until is not None and self.now < until and not self._buckets:
            self.now = until
        return processed

    # -- inspection --------------------------------------------------------

    def _peek(self) -> Optional[Event]:
        """Next live event without running it (cancelled fronts pruned)."""
        while True:
            bucket = self._next_bucket()
            if bucket is None:
                return None
            while bucket and bucket[0].cancelled:
                bucket.popleft()
            if bucket:
                return bucket[0]

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(
            1
            for bucket in self._buckets.values()
            for ev in bucket
            if not ev.cancelled
        )

    def idle(self) -> bool:
        return self._peek() is None

    def halt(self) -> None:
        """Stop every run loop after the current event completes."""
        self.halted = True

    def resume_halted(self) -> None:
        self.halted = False

    # -- checkpoint/restore ------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Engine scalars only — identical in form *and content* to the
        reference engine's snapshot, so checkpoint blobs are
        byte-identical across engines.  Pending events are not
        serialized; each layer re-issues its own from descriptors."""
        return {
            "now": self.now,
            "events_processed": self.events_processed,
            "halted": False,  # a restored engine always starts runnable
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Install scalars and clear the calendar.  Events scheduled
        before restore are dropped — the checkpoint's descriptors are
        the only source of pending work."""
        self._buckets = {}
        self._times = []
        self._seq = 0
        self.now = state["now"]
        self.events_processed = state["events_processed"]
        self.halted = state["halted"]
