"""Clusters: processing elements organized around a shared memory.

"An architecture is evolving that is configured as clusters of
processing elements organized around a shared memory. ... Within each
cluster, one PE runs the operating system kernel, which fields incoming
messages and assigns available PE's to process them.  Messages arriving
in the input queue of any cluster can be processed by any available PE."

The hardware cluster owns the PEs, the shared memory, and the input
queue.  *Policy* — which PE serves which message — belongs to the
system programmer's VM (:mod:`repro.sysvm.kernel`), which installs an
``on_message`` hook here.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..errors import ConfigurationError, FaultError
from .events import EventEngine
from .memory import SharedMemory
from .metrics import MetricsRegistry
from .pe import PEState, ProcessingElement


class Cluster:
    """One cluster: kernel PE + worker PEs + shared memory + input queue."""

    def __init__(
        self,
        engine: EventEngine,
        metrics: MetricsRegistry,
        cluster_id: int,
        n_pes: int,
        memory_words: int,
    ) -> None:
        if n_pes < 2:
            raise ConfigurationError(
                f"cluster needs >= 2 PEs (one kernel, one worker), got {n_pes}"
            )
        self.engine = engine
        self.metrics = metrics
        self.cluster_id = cluster_id
        self.pes: List[ProcessingElement] = [
            ProcessingElement(engine, metrics, cluster_id, i, is_kernel=(i == 0))
            for i in range(n_pes)
        ]
        self.memory = SharedMemory(metrics, cluster_id, memory_words)
        self.input_queue: Deque[Any] = deque()
        self.queue_high_water = 0
        # the queue-depth metric name is fixed for the cluster's life;
        # building it once keeps enqueue() free of per-message formatting
        self._queue_metric = f"queue.cluster{cluster_id}"
        #: installed by the sysvm kernel; called after a message is enqueued
        self.on_message: Optional[Callable[["Cluster"], None]] = None
        self.failed = False

    @property
    def kernel_pe(self) -> ProcessingElement:
        return self.pes[0]

    @property
    def worker_pes(self) -> List[ProcessingElement]:
        return self.pes[1:]

    def available_workers(self) -> List[ProcessingElement]:
        """Worker PEs idle right now (the kernel PE never runs tasks)."""
        return [pe for pe in self.worker_pes if pe.is_available()]

    def enqueue(self, message: Any) -> None:
        """A message arrives in the cluster's input queue."""
        if self.failed:
            raise FaultError(f"cluster {self.cluster_id} is down")
        self.input_queue.append(message)
        qlen = len(self.input_queue)
        if qlen > self.queue_high_water:
            self.queue_high_water = qlen
        self.metrics.observe(self._queue_metric, qlen)
        if self.on_message is not None:
            self.on_message(self)

    def dequeue(self) -> Any:
        return self.input_queue.popleft()

    def fail(self) -> None:
        """Take the whole cluster down: all PEs fault, queue is dropped."""
        self.failed = True
        for pe in self.pes:
            if pe.state is not PEState.FAULTY:
                pe.fail()
        self.metrics.incr("fault.cluster_failures")
        self.metrics.incr("fault.messages_lost", len(self.input_queue))
        self.input_queue.clear()

    def snapshot(self) -> dict:
        return {
            "failed": self.failed,
            "queue_high_water": self.queue_high_water,
            "input_queue": list(self.input_queue),
            "pes": [pe.snapshot() for pe in self.pes],
            "memory": self.memory.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Install queue/PE/memory state.  The ``on_message`` hook is
        left alone — the sysvm kernel installed it at construction and
        re-arms itself from its own snapshot."""
        self.failed = state["failed"]
        self.queue_high_water = state["queue_high_water"]
        self.input_queue = deque(state["input_queue"])
        for pe, pe_state in zip(self.pes, state["pes"]):
            pe.restore(pe_state)
        self.memory.restore(state["memory"])

    def utilization(self) -> float:
        """Mean worker-PE utilization over elapsed simulated time."""
        workers = self.worker_pes
        if not workers:
            return 0.0
        return sum(pe.utilization() for pe in workers) / len(workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster({self.cluster_id}, pes={len(self.pes)}, "
            f"queue={len(self.input_queue)})"
        )
