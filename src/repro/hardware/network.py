"""The common communication network between clusters.

"Sets of clusters communicate through a common communication network."
The requirements call for *large messages*, *irregular communication
patterns*, extensibility to larger configurations, and reconfigurability
around faults — so the network model supports several topologies,
shortest-path routing that recomputes when links or clusters fail, and
per-link traffic counters.

Cost model: a message of ``size`` words over a route of ``h`` hops costs

    latency = h * hop_latency + ceil(size / bandwidth_words_per_cycle)

i.e. a per-hop switching cost plus a size term pipelined across the
route (wormhole-style), which is the standard first-order model and
matches what ref [8]'s estimates assume.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..errors import ConfigurationError, RoutingError
from .metrics import MetricsRegistry

TOPOLOGIES = ("complete", "ring", "mesh2d", "hypercube", "star")


def build_topology(kind: str, n: int) -> "nx.Graph":
    """Build the cluster interconnect graph for *n* clusters."""
    if n < 1:
        raise ConfigurationError(f"need at least one cluster, got {n}")
    if kind == "complete":
        return nx.complete_graph(n) if n > 1 else nx.empty_graph(1)
    if kind == "ring":
        return nx.cycle_graph(n) if n > 2 else nx.path_graph(n)
    if kind == "star":
        return nx.star_graph(n - 1) if n > 1 else nx.empty_graph(1)
    if kind == "mesh2d":
        side = int(math.isqrt(n))
        if side * side != n:
            raise ConfigurationError(f"mesh2d needs a square cluster count, got {n}")
        g = nx.grid_2d_graph(side, side)
        return nx.convert_node_labels_to_integers(g, ordering="sorted")
    if kind == "hypercube":
        dim = n.bit_length() - 1
        if 1 << dim != n:
            raise ConfigurationError(f"hypercube needs a power-of-two cluster count, got {n}")
        g = nx.hypercube_graph(dim) if dim > 0 else nx.empty_graph(1)
        return nx.convert_node_labels_to_integers(g, ordering="sorted")
    raise ConfigurationError(f"unknown topology {kind!r}; one of {TOPOLOGIES}")


class Network:
    """Shortest-path routed interconnect with traffic accounting."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        n_clusters: int,
        topology: str = "complete",
        hop_latency: int = 10,
        bandwidth_words_per_cycle: int = 4,
    ) -> None:
        if hop_latency < 0 or bandwidth_words_per_cycle <= 0:
            raise ConfigurationError("hop_latency >= 0 and bandwidth > 0 required")
        self.metrics = metrics
        self.n_clusters = n_clusters
        self.topology_name = topology
        self.hop_latency = hop_latency
        self.bandwidth = bandwidth_words_per_cycle
        self.graph = build_topology(topology, n_clusters)
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}
        self._link_traffic: Dict[Tuple[int, int], int] = {}
        self._down_clusters: set = set()

    # -- fault handling --------------------------------------------------

    def fail_link(self, a: int, b: int) -> None:
        if not self.graph.has_edge(a, b):
            raise RoutingError(f"no link between clusters {a} and {b}")
        self.graph.remove_edge(a, b)
        self._route_cache.clear()
        self.metrics.incr("fault.link_failures")

    def fail_cluster(self, cid: int) -> None:
        """Isolate a cluster: all its links go down, routes recompute."""
        if cid not in self.graph:
            raise RoutingError(f"unknown cluster {cid}")
        self._down_clusters.add(cid)
        self._route_cache.clear()

    def restore_cluster(self, cid: int) -> None:
        self._down_clusters.discard(cid)
        self._route_cache.clear()

    def is_cluster_up(self, cid: int) -> bool:
        return cid not in self._down_clusters

    # -- checkpoint/restore ----------------------------------------------

    def snapshot(self) -> dict:
        return {
            "edges": sorted((min(a, b), max(a, b)) for a, b in self.graph.edges),
            "down_clusters": sorted(self._down_clusters),
            "link_traffic": dict(self._link_traffic),
        }

    def restore(self, state: dict) -> None:
        """Rebuild the topology, then drop edges lost to link faults.
        The route cache is left cold — routes recompute deterministically."""
        self.graph = build_topology(self.topology_name, self.n_clusters)
        kept = {(min(a, b), max(a, b)) for a, b in state["edges"]}
        for a, b in list(self.graph.edges):
            if (min(a, b), max(a, b)) not in kept:
                self.graph.remove_edge(a, b)
        self._down_clusters = set(state["down_clusters"])
        self._link_traffic = dict(state["link_traffic"])
        self._route_cache.clear()

    # -- routing ----------------------------------------------------------

    def route(self, src: int, dst: int) -> List[int]:
        """The cluster sequence from *src* to *dst* (inclusive).

        Raises :class:`RoutingError` if either endpoint is down or the
        topology is disconnected between them.
        """
        if src in self._down_clusters or dst in self._down_clusters:
            raise RoutingError(f"cluster down on route {src}->{dst}")
        if src == dst:
            return [src]
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        view = nx.restricted_view(self.graph, nodes=list(self._down_clusters), edges=[])
        try:
            path = nx.shortest_path(view, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise RoutingError(f"no route from cluster {src} to {dst}") from None
        self._route_cache[key] = path
        return path

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst)) - 1

    def transfer_cost(self, src: int, dst: int, size_words: int) -> int:
        """Latency in cycles to move *size_words* from src to dst.

        Intra-cluster transfers (src == dst) pay only the size term with
        no hop latency — shared memory, not the network.
        """
        h = self.hops(src, dst)
        size_cycles = math.ceil(size_words / self.bandwidth) if size_words else 0
        return h * self.hop_latency + size_cycles

    def record_transfer(self, src: int, dst: int, size_words: int) -> int:
        """Route, account traffic on every link, return the latency."""
        path = self.route(src, dst)
        for a, b in zip(path, path[1:]):
            link = (min(a, b), max(a, b))
            self._link_traffic[link] = self._link_traffic.get(link, 0) + size_words
        self.metrics.incr("comm.network_transfers")
        self.metrics.incr("comm.network_words", size_words)
        self.metrics.observe("comm.hops", len(path) - 1)
        return self.transfer_cost(src, dst, size_words)

    def link_traffic(self) -> Dict[Tuple[int, int], int]:
        """Words carried per link, for the E3 network-load table."""
        return dict(self._link_traffic)

    def max_link_load(self) -> int:
        return max(self._link_traffic.values(), default=0)

    def diameter(self) -> int:
        view = nx.restricted_view(self.graph, nodes=list(self._down_clusters), edges=[])
        if view.number_of_nodes() <= 1:
            return 0
        return nx.diameter(view)
