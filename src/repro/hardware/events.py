"""Discrete-event engine for the FEM-2 machine simulator.

Simulated time is measured in **cycles** (integers).  All hardware and
virtual-machine activity — PE compute bursts, message hops, kernel
dispatch — is expressed as events on one engine, so measurements of
processing, storage, and communication share a single clock, as the
paper's simulation program requires.

Determinism: events at equal times fire in scheduling order (a
monotonically increasing sequence number breaks ties), so simulations
are exactly reproducible.
"""

from __future__ import annotations

import contextlib
import heapq
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError

#: recognised engine kinds; "default" resolves through
#: :func:`resolve_engine` (module override, then environment, then fast)
ENGINES = ("default", "reference", "fast", "compiled")

#: the kinds a config/env/override may name directly (everything but
#: the "default" placeholder)
CONCRETE_ENGINES = ("reference", "fast", "compiled")

#: what ``engine="default"`` means when nothing overrides it.  The fast
#: calendar-queue engine (:mod:`repro.hardware.calqueue`) is the
#: production path; the reference heapq engine below stays the oracle,
#: and the compiled engine (:mod:`repro.hardware.compiled`) is the
#: opt-in burst-fusing specialization backend.
DEFAULT_ENGINE = "fast"

#: process-wide override installed by :func:`forced_engine`; None means
#: "no override".  The equivalence harness (repro.perf) uses this to run
#: unmodified benchmarks under any engine.
_FORCED: Optional[str] = None


def resolve_engine(kind: str) -> str:
    """Resolve a :class:`MachineConfig` engine field to a concrete kind.

    Override order, strongest first (documented in DESIGN.md §13):

    1. a :func:`forced_engine` override — wins over everything,
       including explicit configs (that is the point of the harness);
    2. an explicit ``"reference"``/``"fast"``/``"compiled"`` config;
    3. the ``FEM2_ENGINE`` environment variable;
    4. :data:`DEFAULT_ENGINE`.

    An unknown ``FEM2_ENGINE`` value raises :class:`ConfigurationError`
    rather than silently falling back — a typo like ``FEM2_ENGINE=ref``
    must not masquerade as a default-engine run.
    """
    if kind not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {kind!r}; one of {ENGINES}"
        )
    if _FORCED is not None:
        return _FORCED
    if kind != "default":
        return kind
    env = os.environ.get("FEM2_ENGINE", "").strip().lower()
    if not env:
        return DEFAULT_ENGINE
    if env not in CONCRETE_ENGINES:
        raise ConfigurationError(
            f"unknown FEM2_ENGINE value {env!r}; one of {CONCRETE_ENGINES}"
        )
    return env


@contextlib.contextmanager
def forced_engine(kind: str) -> Iterator[None]:
    """Force every machine built inside the block onto one engine.

    The A/B half of the equivalence harness: the same workload code,
    run under ``forced_engine("reference")``, ``forced_engine("fast")``,
    and ``forced_engine("compiled")``, must produce identical final
    metrics, clocks, and checkpoint blobs.
    """
    if kind not in CONCRETE_ENGINES:
        raise ConfigurationError(
            f"forced_engine needs one of {CONCRETE_ENGINES}, got {kind!r}"
        )
    global _FORCED
    prev = _FORCED
    _FORCED = kind
    try:
        yield
    finally:
        _FORCED = prev


class Event:
    """A scheduled callback.  ``cancel()`` is O(1); cancelled events are
    skipped when popped."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"Event(t={self.time}, {name})"


class EventEngine:
    """A priority-queue discrete-event simulator clocked in cycles.

    This is the **reference** engine: one global heap, one event per
    pop, no batching — simple enough to audit by eye.  Production runs
    use :class:`repro.hardware.calqueue.FastEventEngine`, which must
    stay observationally identical to this one (same dispatch order,
    same clock, same snapshot form); ``repro.perf`` enforces that.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Event] = []
        self._seq = 0
        self.events_processed = 0
        #: set by :meth:`halt`; run loops drain no further events until
        #: cleared.  Used by checkpointed fault recovery to stop a doomed
        #: run at the fault without unwinding through every caller.
        self.halted = False
        #: optional span tracer (duck-typed; see repro.obs).  Dispatch is
        #: recorded aggregate-only so million-event runs stay O(1) memory.
        self.tracer = None

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run *delay* cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + int(delay), fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute cycle count."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        ev = Event(int(time), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.now = ev.time
            self.events_processed += 1
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.point(
                    "hw.event",
                    getattr(ev.fn, "__qualname__", "event"),
                    ev.time,
                    aggregate_only=True,
                )
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until* cycles pass, or
        *max_events* fire.  Returns the number of events processed."""
        processed = 0
        while self._queue:
            if self.halted:
                break
            if max_events is not None and processed >= max_events:
                break
            nxt = self._peek()
            if nxt is None:
                break
            if until is not None and nxt.time > until:
                self.now = until
                break
            self.step()
            processed += 1
        if until is not None and self.now < until and not self._queue:
            self.now = until
        return processed

    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    def idle(self) -> bool:
        return self._peek() is None

    def halt(self) -> None:
        """Stop every run loop after the current event completes."""
        self.halted = True

    def resume_halted(self) -> None:
        self.halted = False

    # -- checkpoint/restore ------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Engine scalars only.  Pending events are *not* serialized —
        each layer that scheduled one re-issues it from its own
        descriptors on restore (see :mod:`repro.ckpt`)."""
        return {
            "now": self.now,
            "events_processed": self.events_processed,
            "halted": False,  # a restored engine always starts runnable
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Install scalars and clear the queue.  Any events a caller
        scheduled before restore (e.g. a spawn made while rebuilding the
        program) are dropped — the checkpoint's descriptors are the only
        source of pending work."""
        self._queue = []
        self._seq = 0
        self.now = state["now"]
        self.events_processed = state["events_processed"]
        self.halted = state["halted"]
