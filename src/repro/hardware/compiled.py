"""The compiled simulation engine: calendar queue + burst fusion.

:class:`CompiledEventEngine` extends the calendar-queue fast engine
with the one capability the submit-time compiler (:mod:`repro.compile`)
needs from the hardware layer: **fusing a burst completion into the
current dispatch**.  When the runtime's fast-path executor knows the
next thing that can possibly happen is the completion of the burst it
is about to issue, it asks :meth:`try_advance` to move the clock there
directly — no Event allocation, no bucket append, no pop — and then
runs the continuation inline.  A whole fixed-length chain of bursts
(read → compute → write → ...) collapses into the single engine event
that started it.

Fusion is *observationally invisible*.  ``try_advance`` succeeds only
when no pending event (cancelled or not) is due at or before the
fused completion time, so nothing could have interleaved; it then
performs exactly the bookkeeping dispatching the real completion event
would have: clock to the completion time, ``events_processed`` +1, one
sequence number consumed (the one :meth:`schedule` would have taken at
burst start), the same budget charge, and the same aggregate-only
``hw.event`` tracer point.  Dispatch order, clocks, event counts,
metrics, traces, and checkpoint blobs all match the reference engine
byte for byte; ``repro.perf`` and ``tests/test_engine_equivalence.py``
enforce it across the three-engine matrix.

Fusion is armed only inside :meth:`run`.  :meth:`step` never fuses, so
drivers that need between-event safe points — the checkpointer, the
service pool's quantum scheduler — see the exact per-event behaviour
of the other engines.

:meth:`replay` is the engine's second specialization: it executes a
*flattened dispatch program* — periodic event chains proven independent
by static analysis — without materializing any events at all, which is
what the E14 raw-dispatch benchmark measures.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .calqueue import FastEventEngine

__all__ = ["CompiledEventEngine"]


class CompiledEventEngine(FastEventEngine):
    """Calendar-queue engine with an inline burst-fusion fast path.

    Without a :class:`repro.compile.CompiledExecutor` driving
    :meth:`try_advance`, this engine behaves exactly like
    :class:`~repro.hardware.calqueue.FastEventEngine` — fusion is a
    capability, not a behaviour change.
    """

    __slots__ = ("_fusing", "_until", "_fuel")

    #: base exemptions plus the fusion state, which is live only inside
    #: run() (reset in its finally) and so never checkpointable
    _snapshot_exempt = ("tracer", "_buckets", "_times",
                        "_fusing", "_until", "_fuel")

    def __init__(self) -> None:
        super().__init__()
        #: True only inside :meth:`run` — step() must stay per-event so
        #: checkpoint/quantum drivers keep their safe points
        self._fusing = False
        #: run(until=...) bound, honoured by try_advance
        self._until: Optional[int] = None
        #: remaining max_events budget (None = unlimited); a fused
        #: completion charges it exactly like a dispatched event
        self._fuel: Optional[int] = None

    # -- fusion ------------------------------------------------------------

    def _next_time(self) -> Optional[int]:
        """Earliest cycle with any queued event (cancelled included),
        pruning empty buckets like :meth:`_next_bucket`."""
        times = self._times
        buckets = self._buckets
        while times:
            if buckets.get(times[0]):
                return times[0]
            del buckets[times[0]]
            heapq.heappop(times)
        return None

    def try_advance(self, end: int) -> bool:
        """Fuse a burst completing at cycle *end* into the current
        dispatch, if nothing else could run first.

        On success the engine is in exactly the state it would be after
        scheduling the completion at *end* and dispatching it: ``now``
        is *end*, one event processed, one seq consumed, budget charged,
        tracer point emitted.  On refusal nothing changes and the caller
        must schedule the burst normally.
        """
        if not self._fusing or self.halted:
            return False
        if self._fuel is not None and self._fuel <= 0:
            return False
        if self._until is not None and end > self._until:
            return False
        nxt = self._next_time()
        if nxt is not None and nxt <= end:
            return False
        self.now = end
        self._seq += 1  # the seq schedule() would have taken at burst start
        self.events_processed += 1
        if self._fuel is not None:
            self._fuel -= 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            # mirror of the completion event's dispatch point
            tracer.point(
                "hw.event", "ProcessingElement._finish", end,
                aggregate_only=True,
            )
        return True

    # -- dispatch ----------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """The fast engine's run loop with fusion armed.

        Identical control flow to
        :meth:`FastEventEngine.run <repro.hardware.calqueue.FastEventEngine.run>`,
        except the ``until``/``max_events`` bounds are published so
        :meth:`try_advance` can honour them mid-handler, and the
        processed count is taken from ``events_processed`` (fused
        completions count as processed events, exactly as their
        dispatched twins would).
        """
        start_count = self.events_processed
        self._fusing = True
        self._until = until
        self._fuel = max_events
        try:
            while not self.halted:
                bucket = self._next_bucket()
                if bucket is None:
                    break
                if self._fuel is not None and self._fuel <= 0:
                    break
                t = self._times[0]
                if until is not None and t > until:
                    self.now = until
                    break
                while bucket:
                    ev = bucket.popleft()
                    if ev.cancelled:
                        continue
                    self.now = t
                    self.events_processed += 1
                    if self._fuel is not None:
                        self._fuel -= 1
                    tracer = self.tracer
                    if tracer is not None and tracer.enabled:
                        tracer.point(
                            "hw.event",
                            getattr(ev.fn, "__qualname__", "event"),
                            t,
                            aggregate_only=True,
                        )
                    ev.fn(*ev.args)
                    if self.halted:
                        break
                    if self._fuel is not None and self._fuel <= 0:
                        break
        finally:
            self._fusing = False
            self._until = None
            self._fuel = None
        if until is not None and self.now < until and not self._buckets:
            self.now = until
        return self.events_processed - start_count

    # -- flattened dispatch programs ---------------------------------------

    def replay(self, chains: Sequence[Tuple[int, int, int]]) -> int:
        """Execute a flattened dispatch program: periodic event chains.

        Each chain is ``(start, period, count)`` — *count* dispatches at
        cycles ``start, start + period, ...`` (relative to ``now``),
        the shape :mod:`repro.compile` emits for statically resolved
        spawn/burst structures.  The chains were proven independent at
        compile time, so no events are materialized: the engine merges
        the chains' precomputed schedules (time-major, chain order
        within a cycle) and advances clock and counters per dispatch.
        The final ``now`` and ``events_processed`` are identical to
        interpreting the same chains event by event.

        Requires an empty queue (a replay cannot interleave with
        dynamically scheduled events) and consumes one seq per dispatch,
        like the schedule calls it replaces.
        """
        if self._next_bucket() is not None:
            raise SimulationError("replay needs an idle engine")
        heap: List[Tuple[int, int, int, int]] = []
        for idx, (start, period, count) in enumerate(chains):
            if count < 0 or period < 0 or start < 0:
                raise SimulationError(
                    f"bad chain ({start}, {period}, {count}): all fields "
                    "must be non-negative"
                )
            if count:
                heap.append((self.now + start, idx, count - 1, period))
        heapq.heapify(heap)
        replace = heapq.heapreplace
        pop = heapq.heappop
        now = self.now
        n = 0
        while heap:
            t, idx, left, period = heap[0]
            now = t
            n += 1
            if left:
                replace(heap, (t + period, idx, left - 1, period))
            else:
                pop(heap)
        self.now = now
        self.events_processed += n
        self._seq += n
        return n
