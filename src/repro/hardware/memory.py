"""Per-cluster shared memory with capacity accounting.

The architecture section of the paper requires "large storage
requirements; dynamic allocation".  The hardware model tracks words
reserved and released per cluster, with a high-water mark and per-tag
attribution (activation records, arrays, messages, code), so the E1
storage-requirements table can break usage down the way ref [8] does.

Block-level placement (free lists, fragmentation) is the system
programmer's concern and lives in :mod:`repro.sysvm.heap`, which sits
on top of this capacity model.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from ..errors import MemoryCapacityError
from .metrics import MetricsRegistry


class SharedMemory:
    """Capacity accounting for one cluster's shared memory, in words."""

    def __init__(self, metrics: MetricsRegistry, cluster_id: int, capacity_words: int) -> None:
        if capacity_words <= 0:
            raise MemoryCapacityError(f"capacity must be positive, got {capacity_words}")
        self.metrics = metrics
        self.cluster_id = cluster_id
        self.capacity_words = capacity_words
        self.used_words = 0
        self.high_water = 0
        self._by_tag: Dict[str, int] = defaultdict(int)

    def reserve(self, words: int, tag: str = "data") -> None:
        """Claim *words*; raises :class:`MemoryCapacityError` if full."""
        if words < 0:
            raise MemoryCapacityError(f"negative reservation {words}")
        if self.used_words + words > self.capacity_words:
            raise MemoryCapacityError(
                f"cluster {self.cluster_id}: cannot reserve {words} words "
                f"({self.used_words}/{self.capacity_words} used)"
            )
        self.used_words += words
        self._by_tag[tag] += words
        if self.used_words > self.high_water:
            self.high_water = self.used_words
            self.metrics.set_max(f"mem.hwm.cluster{self.cluster_id}", self.high_water)
        self.metrics.set_max(f"mem.hwm.{tag}.cluster{self.cluster_id}",
                             self._by_tag[tag])
        self.metrics.incr("mem.reservations")
        self.metrics.incr(f"mem.reserved.{tag}", words)

    def release(self, words: int, tag: str = "data") -> None:
        if words < 0:
            raise MemoryCapacityError(f"negative release {words}")
        if self._by_tag[tag] < words:
            raise MemoryCapacityError(
                f"cluster {self.cluster_id}: releasing {words} words of {tag!r} "
                f"but only {self._by_tag[tag]} reserved"
            )
        self.used_words -= words
        self._by_tag[tag] -= words

    def snapshot(self) -> Dict[str, object]:
        return {
            "used_words": self.used_words,
            "high_water": self.high_water,
            "by_tag": {k: v for k, v in self._by_tag.items() if v},
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Install counters directly.  Heap/code/array restores above
        rebuild their own structures *without* re-reserving, so capacity
        is accounted exactly once — here."""
        self.used_words = state["used_words"]
        self.high_water = state["high_water"]
        self._by_tag = defaultdict(int, state["by_tag"])

    def free_words(self) -> int:
        return self.capacity_words - self.used_words

    def usage_by_tag(self) -> Dict[str, int]:
        return {k: v for k, v in self._by_tag.items() if v}

    def utilization(self) -> float:
        return self.used_words / self.capacity_words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedMemory(cluster={self.cluster_id}, "
            f"{self.used_words}/{self.capacity_words} words)"
        )
