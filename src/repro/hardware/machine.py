"""The FEM-2 machine: configuration and top-level simulator assembly.

A :class:`Machine` wires together the event engine, metrics registry,
clusters, and network, and provides the one hardware primitive the
system VM needs: :meth:`deliver` — move a message of a given size from
one cluster to another and hand it to the destination's input queue
after the modelled network latency.

Configurations are value objects (:class:`MachineConfig`) so benchmark
sweeps can enumerate them declaratively; ``MachineConfig.small()`` etc.
give the standard sizes used across the experiment suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, FaultError, RoutingError
from .calqueue import FastEventEngine
from .cluster import Cluster
from .compiled import CompiledEventEngine
from .events import ENGINES, EventEngine, resolve_engine
from .metrics import MetricsRegistry
from .network import TOPOLOGIES, Network


@dataclass(frozen=True)
class MachineConfig:
    """Declarative description of one FEM-2 configuration.

    ``pes_per_cluster`` includes the kernel PE, so the number of worker
    PEs per cluster is ``pes_per_cluster - 1``.  All costs are in cycles
    and words (1 word = one floating-point value).
    """

    n_clusters: int = 4
    pes_per_cluster: int = 5
    memory_words_per_cluster: int = 1 << 22
    topology: str = "complete"
    hop_latency: int = 10
    bandwidth_words_per_cycle: int = 4
    message_fixed_cycles: int = 20  # kernel format/decode cost per message
    dispatch_cycles: int = 5        # kernel cost to assign a PE
    flop_cycles: int = 1            # cycles per floating-point operation
    word_touch_cycles: int = 1      # cycles per word moved within a cluster
    #: simulation engine: "reference" (heapq oracle), "fast" (calendar
    #: queue), "compiled" (calendar queue + burst fusion driven by the
    #: repro.compile submit-time specializer), or "default" (FEM2_ENGINE
    #: env var, then fast).  All engines are observationally identical;
    #: see repro.perf and DESIGN.md §13.
    engine: str = "default"

    def validate(self) -> None:
        if self.n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1")
        if self.pes_per_cluster < 2:
            raise ConfigurationError("pes_per_cluster must be >= 2 (kernel + worker)")
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(f"unknown topology {self.topology!r}")
        if self.memory_words_per_cluster <= 0:
            raise ConfigurationError("memory_words_per_cluster must be positive")
        if min(self.message_fixed_cycles, self.dispatch_cycles, self.flop_cycles,
               self.word_touch_cycles, self.hop_latency) < 0:
            raise ConfigurationError("cost parameters must be non-negative")
        if self.bandwidth_words_per_cycle <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; one of {ENGINES}"
            )

    @property
    def total_workers(self) -> int:
        return self.n_clusters * (self.pes_per_cluster - 1)

    def scaled(self, **overrides: Any) -> "MachineConfig":
        """A copy with some fields replaced (for parameter sweeps)."""
        return replace(self, **overrides)

    @classmethod
    def small(cls) -> "MachineConfig":
        return cls(n_clusters=2, pes_per_cluster=3)

    @classmethod
    def medium(cls) -> "MachineConfig":
        return cls(n_clusters=4, pes_per_cluster=5)

    @classmethod
    def large(cls) -> "MachineConfig":
        return cls(n_clusters=16, pes_per_cluster=9, topology="hypercube")


class Machine:
    """An instantiated FEM-2 configuration under simulation."""

    def __init__(self, config: MachineConfig, tracer=None) -> None:
        config.validate()
        self.config = config
        kind = resolve_engine(config.engine)
        #: the concrete engine kind actually running (after override
        #: resolution) — the langvm program keys plan compilation on it
        self.engine_kind = kind
        if kind == "fast":
            self.engine = FastEventEngine()
        elif kind == "compiled":
            self.engine = CompiledEventEngine()
        else:
            self.engine = EventEngine()
        self.metrics = MetricsRegistry()
        #: span tracer shared by every layer running on this machine
        #: (duck-typed: a repro.obs.Tracer, or None for zero-cost off)
        self.tracer = tracer
        self.engine.tracer = tracer
        self.clusters: List[Cluster] = [
            Cluster(
                self.engine,
                self.metrics,
                cid,
                config.pes_per_cluster,
                config.memory_words_per_cluster,
            )
            for cid in range(config.n_clusters)
        ]
        self.network = Network(
            self.metrics,
            config.n_clusters,
            topology=config.topology,
            hop_latency=config.hop_latency,
            bandwidth_words_per_cycle=config.bandwidth_words_per_cycle,
        )
        #: payloads currently traversing the network: key -> (event, dst,
        #: payload).  This is the machine's explicit ownership of in-flight
        #: communication state — checkpoints re-schedule these arrivals,
        #: and fault recovery can enumerate messages doomed to be dropped.
        self._in_flight: Dict[int, Tuple[Any, int, Any]] = {}
        self._flight_key = 0

    # -- access --------------------------------------------------------------

    def cluster(self, cid: int) -> Cluster:
        try:
            return self.clusters[cid]
        except IndexError:
            raise ConfigurationError(f"no cluster {cid}") from None

    def live_clusters(self) -> List[Cluster]:
        return [c for c in self.clusters if not c.failed]

    @property
    def now(self) -> int:
        return self.engine.now

    # -- communication primitive ---------------------------------------------

    def deliver(
        self,
        src: int,
        dst: int,
        size_words: int,
        payload: Any,
        extra_delay: int = 0,
    ) -> None:
        """Send *payload* of *size_words* from cluster *src* to *dst*.

        The payload lands in the destination input queue after the
        network latency (plus *extra_delay*); the destination's
        ``on_message`` hook then fires.  Raises :class:`RoutingError`
        if no route exists — callers (the kernel) decide whether that
        is fatal or triggers rerouting to another cluster.
        """
        if self.clusters[dst].failed or not self.network.is_cluster_up(dst):
            raise RoutingError(f"destination cluster {dst} is down")
        latency = self.network.record_transfer(src, dst, size_words)
        self.metrics.incr("comm.messages")
        self.metrics.incr("comm.words", size_words)
        self.metrics.observe("comm.message_size", size_words)
        self._schedule_arrival(self.engine.now + latency + extra_delay, dst, payload)

    def _schedule_arrival(self, at: int, dst: int, payload: Any) -> None:
        key = self._flight_key
        self._flight_key += 1
        ev = self.engine.schedule_at(at, self._arrive, key, dst, payload)
        self._in_flight[key] = (ev, dst, payload)

    def _arrive(self, key: int, dst: int, payload: Any) -> None:
        self._in_flight.pop(key, None)
        cluster = self.clusters[dst]
        if cluster.failed:
            self.metrics.incr("fault.messages_lost")
            return
        cluster.enqueue(payload)

    def in_flight(self) -> List[Tuple[int, Any]]:
        """Live ``(dst, payload)`` pairs still traversing the network."""
        return [
            (dst, payload)
            for (ev, dst, payload) in self._in_flight.values()
            if not ev.cancelled
        ]

    # -- lifecycle -------------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Advance the simulation; returns events processed."""
        return self.engine.run(until=until, max_events=max_events)

    def run_to_completion(self, max_events: int = 5_000_000) -> int:
        """Drain the event queue; guards against runaway simulations.
        A halted engine (checkpointed fault recovery pending) returns
        quietly — the recovery driver owns what happens next."""
        n = self.engine.run(max_events=max_events)
        if not self.engine.idle() and not self.engine.halted:
            raise ConfigurationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return n

    # -- checkpoint/restore ------------------------------------------------

    def snapshot(self) -> dict:
        """All hardware-owned mutable state.  In-flight payloads are
        captured as (arrival time, original seq, dst, payload)
        descriptors; the engine queue itself is never serialized."""
        flights = [
            (ev.time, ev.seq, dst, payload)
            for (ev, dst, payload) in self._in_flight.values()
            if not ev.cancelled
        ]
        return {
            "engine": self.engine.snapshot(),
            "metrics": self.metrics.snapshot(),
            "clusters": [c.snapshot() for c in self.clusters],
            "network": self.network.snapshot(),
            "in_flight": sorted(flights, key=lambda f: (f[0], f[1])),
        }

    def restore(self, state: dict, pending: list) -> None:
        """Install hardware state; append re-schedule thunks for in-flight
        arrivals to *pending* as ``(time, seq, thunk)`` so the caller can
        interleave them with other layers' events in original order."""
        self.engine.restore(state["engine"])
        self.metrics.restore(state["metrics"])
        for cluster, cstate in zip(self.clusters, state["clusters"]):
            cluster.restore(cstate)
        self.network.restore(state["network"])
        self._in_flight = {}
        self._flight_key = 0
        for time, seq, dst, payload in state["in_flight"]:
            pending.append((
                time, seq,
                lambda t=time, d=dst, p=payload: self._schedule_arrival(t, d, p),
            ))

    # -- summary ----------------------------------------------------------------

    def utilization(self) -> float:
        """Mean worker utilization across live clusters."""
        live = self.live_clusters()
        if not live:
            return 0.0
        return sum(c.utilization() for c in live) / len(live)

    def describe(self) -> str:
        c = self.config
        return (
            f"FEM-2[{c.n_clusters} clusters x {c.pes_per_cluster} PEs, "
            f"{c.topology}, {c.memory_words_per_cluster} words/cluster]"
        )
