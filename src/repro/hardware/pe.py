"""Processing elements.

Each cluster contains identical PEs; by convention PE 0 of every
cluster runs the operating-system kernel ("Within each cluster, one PE
runs the operating system kernel, which fields incoming messages and
assigns available PE's to process them").

A PE executes *compute bursts*: the caller asks for ``cycles`` of work
and a completion callback.  The PE is busy until the burst ends; the
scheduler above (``repro.sysvm``) is responsible for never handing work
to a busy PE.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Tuple

from ..errors import FaultError, SchedulingError
from .events import EventEngine
from .metrics import BusyTracker, MetricsRegistry


class PEState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    FAULTY = "faulty"


class ProcessingElement:
    """One microprocessor of the FEM-2 array."""

    def __init__(
        self,
        engine: EventEngine,
        metrics: MetricsRegistry,
        cluster_id: int,
        index: int,
        is_kernel: bool = False,
    ) -> None:
        self.engine = engine
        self.metrics = metrics
        self.cluster_id = cluster_id
        self.index = index
        self.is_kernel = is_kernel
        self.state = PEState.IDLE
        self.busy = BusyTracker()
        self.cycles_executed = 0
        self._burst_event = None
        # cached metrics cells (see MetricsRegistry.counter); fetched on
        # first use so counters still register at first increment, and
        # revalidated against metrics.version across restore()/reset()
        self._cells_version = -1
        self._bursts_cell = None
        self._cycles_cell = None

    @property
    def pe_id(self) -> Tuple[int, int]:
        return (self.cluster_id, self.index)

    @property
    def name(self) -> str:
        return f"pe{self.cluster_id}.{self.index}"

    def _refresh_cells(self) -> None:
        """Drop cached metrics cells after a registry restore()/reset()."""
        self._bursts_cell = None
        self._cycles_cell = None
        self._cells_version = self.metrics.version

    def execute(
        self, cycles: int, on_done: Callable[..., None], *args: Any
    ) -> None:
        """Run a compute burst of *cycles*; call ``on_done(*args)`` when
        finished.

        Zero-cycle bursts complete via the event queue too, preserving
        deterministic ordering.  Extra *args* ride on the completion
        event itself, so hot callers (kernel dispatch, runtime bursts)
        pass bound methods plus their argument instead of building a
        closure per burst.
        """
        if self.state is PEState.FAULTY:
            raise FaultError(f"{self.name} is faulty")
        if self.state is PEState.BUSY:
            raise SchedulingError(f"{self.name} is already busy")
        if cycles < 0:
            raise SchedulingError(f"negative burst length {cycles}")
        self.state = PEState.BUSY
        self.busy.begin(self.engine.now)
        if self._cells_version != self.metrics.version:
            self._refresh_cells()
        cell = self._bursts_cell
        if cell is None:
            cell = self._bursts_cell = self.metrics.counter("proc.bursts")
        cell.value += 1
        self._burst_event = self.engine.schedule(
            cycles, self._finish, cycles, on_done, *args
        )

    def _finish(self, cycles: int, on_done: Callable[..., None], *args: Any) -> None:
        if self.state is PEState.FAULTY:
            return  # burst was lost to a fault
        self.cycles_executed += cycles
        if self._cells_version != self.metrics.version:
            self._refresh_cells()
        cell = self._cycles_cell
        if cell is None:
            cell = self._cycles_cell = self.metrics.counter("proc.cycles")
        cell.value += cycles
        self.busy.end(self.engine.now)
        self.state = PEState.IDLE
        self._burst_event = None
        on_done(*args)

    def finish_fused(self, cycles: int, start: int) -> None:
        """Account a burst whose completion the compiled engine fused.

        The fast-path executor (:mod:`repro.compile`) has already moved
        the clock to the burst's end via
        :meth:`CompiledEventEngine.try_advance
        <repro.hardware.compiled.CompiledEventEngine.try_advance>`;
        this applies both halves of the :meth:`execute`/:meth:`_finish`
        accounting in one go — busy window ``[start, now]``, burst and
        cycle counters, ``cycles_executed`` — with the state never
        leaving IDLE (no event exists for a fault to cancel, and the
        caller proved nothing can observe the BUSY window).
        """
        if self.state is not PEState.IDLE:
            raise SchedulingError(
                f"{self.name}: fused burst on a {self.state.value} PE"
            )
        self.busy.begin(start)
        if self._cells_version != self.metrics.version:
            self._refresh_cells()
        cell = self._bursts_cell
        if cell is None:
            cell = self._bursts_cell = self.metrics.counter("proc.bursts")
        cell.value += 1
        self.cycles_executed += cycles
        cell = self._cycles_cell
        if cell is None:
            cell = self._cycles_cell = self.metrics.counter("proc.cycles")
        cell.value += cycles
        self.busy.end(self.engine.now)

    def resume_burst(self, total_cycles: int, end_time: int,
                     on_done: Callable[..., None], *args: Any) -> None:
        """Re-issue the completion event of a burst restored mid-flight.

        The PE's BUSY state and busy-since cycle were installed by
        :meth:`restore`; this only schedules ``_finish`` at the burst's
        original end time.  ``proc.bursts`` is *not* incremented — the
        burst was counted when it originally began.
        """
        if self.state is not PEState.BUSY:
            raise SchedulingError(
                f"{self.name}: resume_burst on a PE restored as {self.state.value}"
            )
        self._burst_event = self.engine.schedule_at(
            end_time, self._finish, total_cycles, on_done, *args
        )

    def snapshot(self) -> dict:
        """State scalars.  The in-flight burst event is captured by the
        layer that issued it (runtime/kernel), which re-issues it via
        :meth:`resume_burst` on restore."""
        return {
            "state": self.state.value,
            "cycles_executed": self.cycles_executed,
            "busy": self.busy.snapshot(),
        }

    def restore(self, state: dict) -> None:
        self.state = PEState(state["state"])
        self.cycles_executed = state["cycles_executed"]
        self.busy.restore(state["busy"])
        self._burst_event = None

    def fail(self) -> None:
        """Mark the PE faulty; any in-flight burst is lost."""
        if self.state is PEState.BUSY:
            self.busy.end(self.engine.now)
            if self._burst_event is not None:
                self._burst_event.cancel()
                self._burst_event = None
        self.state = PEState.FAULTY
        self.metrics.incr("fault.pe_failures")

    def repair(self) -> None:
        if self.state is not PEState.FAULTY:
            raise FaultError(f"{self.name} is not faulty")
        self.state = PEState.IDLE

    def is_available(self) -> bool:
        return self.state is PEState.IDLE

    def utilization(self) -> float:
        return self.busy.utilization(self.engine.now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PE({self.name}, {self.state.value})"
