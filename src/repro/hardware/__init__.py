"""Layer 4 of the FEM-2 design: the hardware architecture, simulated.

Clusters of processing elements around shared memories, connected by a
common communication network, driven by a deterministic discrete-event
engine clocked in cycles.  This package is the substrate every virtual
machine above it (sysvm, langvm, appvm) runs on.
"""

from .calqueue import FastEventEngine
from .events import DEFAULT_ENGINE, ENGINES, Event, EventEngine, forced_engine, resolve_engine
from .metrics import BusyTracker, Counter, Histogram, MetricsRegistry
from .pe import PEState, ProcessingElement
from .memory import SharedMemory
from .network import TOPOLOGIES, Network, build_topology
from .cluster import Cluster
from .machine import Machine, MachineConfig
from .faults import FaultInjector, FaultRecord
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "Event",
    "EventEngine",
    "FastEventEngine",
    "forced_engine",
    "resolve_engine",
    "BusyTracker",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "PEState",
    "ProcessingElement",
    "SharedMemory",
    "TOPOLOGIES",
    "Network",
    "build_topology",
    "Cluster",
    "Machine",
    "MachineConfig",
    "FaultInjector",
    "FaultRecord",
    "TraceEvent",
    "TraceRecorder",
]
