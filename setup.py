"""Legacy shim so editable installs work offline (no `wheel` available).

`pip install -e .` needs the `wheel` package (PEP 660); on air-gapped
machines without it, run `python setup.py develop` instead.  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
