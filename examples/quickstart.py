"""Quickstart: a structural engineer's session at the FEM-2 workstation.

The application user's virtual machine in action — exactly the paper's
scenario: "a structural engineer using the system as an interactive
workstation that allows one to store the description of a structural
model, to invoke applications packages to analyze the model, and to
display the results."

The same model is solved twice: host-side (instantly, the oracle) and
on the simulated FEM-2 machine (engine=fem2), which reports the cycle
count the machine would have taken.

Run:  python examples/quickstart.py
"""

from repro import CommandInterpreter

SESSION = """
# --- define the model: a cantilevered plate -------------------------------
new plate
material e=70e9 nu=0.3 thickness=0.01
grid 8 4 2.0 1.0
fix x=0

# --- a load set: shear along the free edge --------------------------------
loadset tip
lineload tip x=2.0 fy -1e4

# --- solve on the host (reference), then on the simulated FEM-2 -----------
solve tip
solve tip engine=fem2 workers=4

# --- long-term storage -----------------------------------------------------
store
"""


def main() -> None:
    ci = CommandInterpreter()
    for line in SESSION.strip().splitlines():
        line = line.strip()
        out = ci.execute(line)
        if line and not line.startswith("#"):
            print(f"fem2> {line}")
        if out:
            print(f"      {out}")

    print()
    print(ci.execute("show model"))
    print()
    print(ci.execute("show displacements tip"))
    print()
    print(ci.execute("show stresses tip"))

    # what the simulated machine did, in the paper's three categories
    program = ci.session.last_program
    m = program.metrics
    print("\nmachine activity of the fem2 solve:")
    print(f"  processing   : {m.get('proc.flops'):,.0f} flops, "
          f"{m.get('proc.cycles'):,.0f} PE cycles")
    print(f"  communication: {m.get('comm.messages'):,.0f} messages, "
          f"{m.get('comm.words'):,.0f} words")
    print(f"  storage      : {sum(m.by_prefix('mem.hwm').values()):,.0f} "
          f"words high-water across clusters")
    print(f"  elapsed      : {program.now:,} cycles on "
          f"{program.machine.describe()}")


if __name__ == "__main__":
    main()
