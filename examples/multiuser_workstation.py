"""Multi-user access: several engineers, one shared model database.

Two of the paper's requirements in one scenario: "provide multi-user
access" and the outermost level of parallelism — "parallelism in user
requests for simultaneous solution of several independent problems."

Three engineers share a database; their three independent problems then
run *simultaneously* on one FEM-2 machine as concurrent root tasks.

Run:  python examples/multiuser_workstation.py
"""

import numpy as np

from repro import MachineConfig, WorkstationSession
from repro.appvm import JobSpec, ModelDatabase, ServicePool, Tenant
from repro.fem import static_solve


def main() -> None:
    shared_db = ModelDatabase()

    # --- engineer 1 designs a plate and stores it --------------------------
    alice = WorkstationSession("alice", database=shared_db)
    alice.define_structure("wing_panel")
    alice.set_material(e=70e9, nu=0.33, thickness=0.005)
    alice.generate_grid(8, 4, 2.0, 1.0)
    alice.fix_line(x=0.0)
    alice.define_load_set("gust")
    alice.add_line_load("gust", 1, -2e3, x=2.0)
    alice.store_model()
    print("alice stored 'wing_panel' in the shared database")

    # --- engineer 2 retrieves it, adds a load case, stores a new version ----
    bob = WorkstationSession("bob", database=shared_db)
    model = bob.retrieve_model("wing_panel")
    bob.define_load_set("landing")
    bob.add_line_load("landing", 0, 5e3, x=2.0)
    version = bob.store_model()
    print(f"bob added load set 'landing' (now version {version})")

    # --- engineer 3 runs her own truss study --------------------------------
    carol = WorkstationSession("carol", database=shared_db)
    carol.define_structure("bridge")
    carol.set_material(e=200e9, nu=0.3, area=0.01)
    carol.generate_truss(8, 2.0, 2.0)
    carol.fix_nodes([0])
    carol.current.constraints.prescribe(8, 1, 0.0)
    carol.define_load_set("traffic")
    carol.add_load("traffic", 4, 1, -1e5)
    carol.store_model()
    print(f"database now holds: {shared_db.keys()}")

    # --- the problems go through the shared job service ---------------------
    print("\nsubmitting the user problems to the FEM-2 job service:")
    cfg = MachineConfig(n_clusters=4, pes_per_cluster=5,
                        memory_words_per_cluster=8_000_000)
    pool = ServicePool(
        n_machines=2, config=cfg,
        tenants=[Tenant("design", share=2), Tenant("research", share=1)],
    )
    jobs = [
        (alice, alice.workspace.get("model:wing_panel"), "gust", "design"),
        (bob, bob.current, "landing", "design"),
        (carol, carol.current, "traffic", "research"),
    ]
    handles = [
        pool.submit(JobSpec(user=session.user, model=model,
                            load_set=load_set, workers=2, tol=1e-8,
                            tenant=tenant))
        for session, model, load_set, tenant in jobs
    ]
    pool.run()
    for (session, model, load_set, _), handle in zip(jobs, handles):
        res = handle.result()
        ref = static_solve(model.mesh, model.material, model.constraints,
                           model.load_sets[load_set])
        err = np.abs(res.u - ref.u).max() / (np.abs(ref.u).max() or 1.0)
        print(f"  {session.user:<6} {model.name:<11} ({load_set:<8}) "
              f"{res.iterations:>3} CG iterations, "
              f"waited {handle.queue_wait:>6,} cycles, "
              f"error vs host {err:.1e}")

    report = pool.report()
    print(f"\npool of {report['machines']} machines ran "
          f"{report['stats']['completed']} jobs in "
          f"{report['global_cycles']:,} service cycles "
          f"(utilization {report['utilization']:.0%})")
    print("(the job-service benchmark E15 drives thousands of these jobs "
          "with quotas, fair share, and preemption)")


if __name__ == "__main__":
    main()
