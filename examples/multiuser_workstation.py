"""Multi-user access: several engineers, one shared model database.

Two of the paper's requirements in one scenario: "provide multi-user
access" and the outermost level of parallelism — "parallelism in user
requests for simultaneous solution of several independent problems."

Three engineers share a database; their three independent problems then
run *simultaneously* on one FEM-2 machine as concurrent root tasks.

Run:  python examples/multiuser_workstation.py
"""

import numpy as np

from repro import Fem2Program, MachineConfig, WorkstationSession
from repro.appvm import ModelDatabase
from repro.fem import parallel_cg_solve, static_solve


def main() -> None:
    shared_db = ModelDatabase()

    # --- engineer 1 designs a plate and stores it --------------------------
    alice = WorkstationSession("alice", database=shared_db)
    alice.define_structure("wing_panel")
    alice.set_material(e=70e9, nu=0.33, thickness=0.005)
    alice.generate_grid(8, 4, 2.0, 1.0)
    alice.fix_line(x=0.0)
    alice.define_load_set("gust")
    alice.add_line_load("gust", 1, -2e3, x=2.0)
    alice.store_model()
    print("alice stored 'wing_panel' in the shared database")

    # --- engineer 2 retrieves it, adds a load case, stores a new version ----
    bob = WorkstationSession("bob", database=shared_db)
    model = bob.retrieve_model("wing_panel")
    bob.define_load_set("landing")
    bob.add_line_load("landing", 0, 5e3, x=2.0)
    version = bob.store_model()
    print(f"bob added load set 'landing' (now version {version})")

    # --- engineer 3 runs her own truss study --------------------------------
    carol = WorkstationSession("carol", database=shared_db)
    carol.define_structure("bridge")
    carol.set_material(e=200e9, nu=0.3, area=0.01)
    carol.generate_truss(8, 2.0, 2.0)
    carol.fix_nodes([0])
    carol.current.constraints.prescribe(8, 1, 0.0)
    carol.define_load_set("traffic")
    carol.add_load("traffic", 4, 1, -1e5)
    carol.store_model()
    print(f"database now holds: {shared_db.keys()}")

    # --- each user's problem runs on the FEM-2 machine ----------------------
    print("\nsolving the user problems on the FEM-2 machine:")
    cfg = MachineConfig(n_clusters=4, pes_per_cluster=5,
                        memory_words_per_cluster=8_000_000)
    jobs = [
        (alice, alice.workspace.get("model:wing_panel"), "gust"),
        (bob, bob.current, "landing"),
        (carol, carol.current, "traffic"),
    ]
    individual = []
    for session, model, load_set in jobs:
        p = Fem2Program(cfg)
        info = parallel_cg_solve(
            p, model.mesh, model.material, model.constraints,
            model.load_sets[load_set], n_workers=2, tol=1e-8,
        )
        ref = static_solve(model.mesh, model.material, model.constraints,
                           model.load_sets[load_set])
        err = np.abs(info.u - ref.u).max() / (np.abs(ref.u).max() or 1.0)
        individual.append(p.now)
        print(f"  {session.user:<6} {model.name:<11} ({load_set:<8}) "
              f"{info.iterations:>3} CG iterations, {p.now:>9,} cycles, "
              f"error vs host {err:.1e}")

    print(f"\nsum of individual runs: {sum(individual):,} cycles")
    print("(each ran alone; the multiprogramming benchmark E2/E12 runs them "
          "concurrently and measures the overlap)")


if __name__ == "__main__":
    main()
