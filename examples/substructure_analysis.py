"""Substructure analysis on the simulated FEM-2 machine.

The middle level of the paper's three levels of parallelism:
"parallelism in the substructure analysis of a larger structure".  Each
substructure task condenses its interior onto the interface, hands the
Schur complement to the root by broadcast, *pauses with its interior
factor retained as local data* (the paper's pause/resume semantics),
and back-substitutes after the root solves the interface system.

Run:  python examples/substructure_analysis.py
"""

import numpy as np

from repro import Fem2Program, MachineConfig
from repro.bench import plane_stress_cantilever
from repro.fem import (
    parallel_substructure_solve,
    partition_strips,
    static_solve,
    substructure_solve,
)


def main() -> None:
    problem = plane_stress_cantilever(10)
    mesh, c, loads = problem.mesh, problem.constraints, problem.loads
    print(f"model: {problem.name} — {mesh.n_nodes} nodes, "
          f"{mesh.n_elements} elements, {mesh.n_dofs} dofs")

    # host-side oracles
    ref = static_solve(mesh, problem.material, c, loads)
    host = substructure_solve(mesh, problem.material, c, loads, n_substructures=4)
    print(f"\nhost direct solve : max|u| = {abs(ref.u).max():.6e}")
    print(f"host substructure : max|u| = {abs(host.u).max():.6e} "
          f"(interface {host.interface_size} dofs, "
          f"interiors {host.interior_sizes})")

    # the same analysis, distributed on the simulated machine
    cfg = MachineConfig(n_clusters=4, pes_per_cluster=4,
                        memory_words_per_cluster=8_000_000)
    prog = Fem2Program(cfg)
    subs = partition_strips(mesh, 4)
    info = parallel_substructure_solve(
        prog, mesh, problem.material, c, loads, subs=subs
    )
    err = np.abs(info.u - ref.u).max() / np.abs(ref.u).max()
    print(f"\nFEM-2 substructure: max|u| = {abs(info.u).max():.6e} "
          f"(relative error vs direct: {err:.2e})")
    print(f"elapsed: {info.elapsed_cycles:,} cycles on {prog.machine.describe()}")

    m = prog.metrics
    print("\nthe protocol, visible in the message counters:")
    for kind in ("initiate_task", "load_code", "pause_notify", "resume_task",
                 "remote_call", "remote_return", "terminate_notify"):
        print(f"  {kind:<18} {m.get(f'comm.messages.{kind}'):>6,.0f}")
    print(f"  broadcasts (schur hand-off): {m.get('comm.broadcasts'):,.0f}")
    print(f"  pauses (factor retained):    {m.get('task.pauses'):,.0f}")

    print("\nper-substructure stats:")
    for s in info.worker_stats:
        print(f"  band {s['band']}: interior {s['interior']} dofs, "
              f"boundary {s['boundary']} dofs")


if __name__ == "__main__":
    main()
