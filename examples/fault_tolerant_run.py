"""Reconfigurability: isolating faulty hardware mid-run.

One of the paper's imposed architecture requirements: "provide
reconfigurability to isolate faulty hardware components."  A task farm
runs while PEs fail; with reconfiguration the kernel simply stops
dispatching to them and the run completes on the survivors.

Two recovery models are shown side by side: *restart* recovery (the
paper's original — interrupted tasks rerun from scratch on survivors)
and *checkpointed* recovery (``repro.ckpt`` — restore the last
periodic checkpoint into fresh hardware and deterministically replay,
losing only the tail since the checkpoint and finishing bit-identical
to a fault-free run).

Run:  python examples/fault_tolerant_run.py
"""

from repro import Fem2Program, MachineConfig
from repro.ckpt import Checkpointer
from repro.hardware import FaultInjector
from repro.langvm import forall


def run_farm(fail_pes: int) -> tuple:
    cfg = MachineConfig(n_clusters=4, pes_per_cluster=5, topology="ring",
                        memory_words_per_cluster=4_000_000)
    prog = Fem2Program(cfg)
    injector = FaultInjector(prog.machine, reconfigure=True, runtime=prog.runtime)

    @prog.task()
    def work(ctx, index):
        yield ctx.compute(cycles=20_000)
        return ctx.cluster

    @prog.task()
    def farm(ctx):
        results = yield from forall(ctx, "work", n=48)
        return results

    # schedule PE failures early in the run: one worker per cluster
    for i in range(fail_pes):
        injector.schedule_pe_failure(5_000 + i * 1_000, i % 4, 1 + i % 3)

    results = prog.run("farm", cluster=0)
    return prog, injector, results


def build_journaled_farm() -> Fem2Program:
    """The restore factory: the same program image every call, with
    journaling on so the runtime can be snapshotted."""
    cfg = MachineConfig(n_clusters=4, pes_per_cluster=5, topology="ring",
                        memory_words_per_cluster=4_000_000)
    prog = Fem2Program(cfg, journal=True)

    @prog.task()
    def work(ctx, index):
        yield ctx.compute(cycles=20_000)
        return index

    @prog.task()
    def farm(ctx):
        return (yield from forall(ctx, "work", n=48))

    return prog


def run_checkpointed_recovery() -> None:
    # the reference: the same farm with no fault at all
    baseline = build_journaled_farm()
    expected = baseline.run("farm", cluster=0)
    fault_free_cycles = baseline.now

    # now with a PE failing mid-run, checkpointing every 10k cycles
    prog = build_journaled_farm()
    injector = FaultInjector(prog.machine, runtime=prog.runtime,
                             recovery="checkpoint")
    injector.schedule_pe_failure(25_000, 0, 1)
    tid = prog.start("farm", cluster=0)
    ckpt = Checkpointer(prog, interval=10_000)
    ckpt.run()  # halts at the fault
    last = ckpt.latest()
    print(f"\ncheckpointed run: PE fault at t=25,000 halted the machine; "
          f"last checkpoint at t={last.time:,} ({last.nbytes:,} bytes)")

    prog = ckpt.recover(build_journaled_farm)  # fresh hardware, same image
    ckpt.run()
    results = prog.runtime.result_of(tid)
    identical = results == expected and prog.now == fault_free_cycles
    print(f"restored + replayed: lost only {25_000 - last.time:,} cycles of "
          f"work, finished at t={prog.now:,}")
    print(f"bit-identical to the fault-free run: {identical}")
    assert identical, "checkpointed recovery must converge to identical results"


def main() -> None:
    print("task farm: 48 tasks of 20k cycles on 4 clusters x 4 workers\n")
    baseline = None
    for fail_pes in (0, 2, 4, 6):
        prog, injector, results = run_farm(fail_pes)
        healthy = injector.healthy_worker_count()
        elapsed = prog.now
        if baseline is None:
            baseline = elapsed
        print(f"  {fail_pes} PE failures -> {healthy:>2} healthy workers, "
              f"all {len(results)} tasks completed, "
              f"{elapsed:>9,} cycles ({elapsed / baseline:.2f}x baseline)")
    print("\nreconfiguration isolates the faulty PEs; work degrades "
          "gracefully instead of failing.")

    # cluster failure with rerouting: the ring loses a node, traffic
    # takes the long way round
    prog, injector, _ = run_farm(0)
    net = prog.machine.network
    print(f"\nring route 0->2 before fault: {net.route(0, 2)}")
    injector.fail_cluster(1)
    print(f"ring route 0->2 after cluster 1 fails: {net.route(0, 2)}")

    run_checkpointed_recovery()


if __name__ == "__main__":
    main()
