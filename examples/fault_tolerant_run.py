"""Reconfigurability: isolating faulty hardware mid-run.

One of the paper's imposed architecture requirements: "provide
reconfigurability to isolate faulty hardware components."  A task farm
runs while PEs fail; with reconfiguration the kernel simply stops
dispatching to them and the run completes on the survivors.

Run:  python examples/fault_tolerant_run.py
"""

from repro import Fem2Program, MachineConfig
from repro.hardware import FaultInjector
from repro.langvm import forall


def run_farm(fail_pes: int) -> tuple:
    cfg = MachineConfig(n_clusters=4, pes_per_cluster=5, topology="ring",
                        memory_words_per_cluster=4_000_000)
    prog = Fem2Program(cfg)
    injector = FaultInjector(prog.machine, reconfigure=True, runtime=prog.runtime)

    @prog.task()
    def work(ctx, index):
        yield ctx.compute(cycles=20_000)
        return ctx.cluster

    @prog.task()
    def farm(ctx):
        results = yield from forall(ctx, "work", n=48)
        return results

    # schedule PE failures early in the run: one worker per cluster
    for i in range(fail_pes):
        injector.schedule_pe_failure(5_000 + i * 1_000, i % 4, 1 + i % 3)

    results = prog.run("farm", cluster=0)
    return prog, injector, results


def main() -> None:
    print("task farm: 48 tasks of 20k cycles on 4 clusters x 4 workers\n")
    baseline = None
    for fail_pes in (0, 2, 4, 6):
        prog, injector, results = run_farm(fail_pes)
        healthy = injector.healthy_worker_count()
        elapsed = prog.now
        if baseline is None:
            baseline = elapsed
        print(f"  {fail_pes} PE failures -> {healthy:>2} healthy workers, "
              f"all {len(results)} tasks completed, "
              f"{elapsed:>9,} cycles ({elapsed / baseline:.2f}x baseline)")
    print("\nreconfiguration isolates the faulty PEs; work degrades "
          "gracefully instead of failing.")

    # cluster failure with rerouting: the ring loses a node, traffic
    # takes the long way round
    prog, injector, _ = run_farm(0)
    net = prog.machine.network
    print(f"\nring route 0->2 before fault: {net.route(0, 2)}")
    injector.fail_cluster(1)
    print(f"ring route 0->2 after cluster 1 fails: {net.route(0, 2)}")


if __name__ == "__main__":
    main()
