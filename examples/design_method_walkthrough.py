"""The FEM-2 design method itself, end to end.

Walks the paper's contribution: the four layers of virtual machine,
formal specification with H-graph semantics, refinement checking
between layers, top-down requirement derivation, the iterative design
process, and the top-down-versus-bottom-up comparison the introduction
argues for.

Run:  python examples/design_method_walkthrough.py
"""

import random

from repro.core import (
    DesignProcess,
    check_refinement,
    derive_requirements,
    design_order_study,
    fem2_grammars,
    fem2_stack,
    fem2_transforms,
    render_stack,
)
from repro.hgraph import Generator, HGraph, Matcher


def main() -> None:
    # 1. the four-layer FEM-2 specification, linked to the running system
    stack = fem2_stack()
    print(f"FEM-2 stack: {len(stack.levels())} layers, "
          f"{stack.total_items()} specification items")
    for spec in stack.layers_top_down():
        comps = sum(1 for ok in spec.completeness().values() if ok)
        print(f"  L{spec.level} {spec.name:<18} {len(spec):>2} items, "
              f"{comps}/5 VM components, audience: {spec.audience}")

    # 2. refinement: every layer implemented by the one below, and every
    #    artifact link resolving into this repository
    report = check_refinement(stack)
    print(f"\nrefinement check: coverage {report.coverage():.0%}, "
          f"{len(report.dangling)} dangling refs, "
          f"{len(report.missing_artifacts)} missing artifacts")

    # 3. top-down requirement derivation
    reqs = derive_requirements(stack)
    print(f"\n{len(reqs)} requirements derived top-down; "
          f"the hardware layer receives "
          f"{sum(1 for r in reqs if r.on_level == 4)} of them")

    # 4. the design-order study: why top-down
    study = design_order_study(stack)
    print("\ndesign-order study (late = constraint arrives after the "
          "constrained layer froze):")
    for name, result in study.items():
        print(f"  {name:<10} freeze order {result.freeze_order}: "
              f"{result.late_count} late of "
              f"{result.late_count + len(result.early)} "
              f"({result.late_fraction:.0%})")

    # 5. formal specification in action: H-graph grammar membership
    grammars = fem2_grammars()
    hg = HGraph("demo")
    gen = Generator(grammars["window_descriptor"], random.Random(7))
    sample = gen.generate(hg)
    ok = Matcher(grammars["window_descriptor"]).matches(sample)
    print(f"\nH-graph grammar demo: generated window descriptor "
          f"matches its grammar: {ok}")

    # 6. H-graph transforms with pre/post-condition checking
    interp = fem2_transforms()
    hg2 = HGraph("loads")
    ls = interp.run("new_load_set", hg2)
    interp.run("add_load", hg2, ls, 3, 1, -1000.0)
    interp.run("add_load", hg2, ls, 7, 0, 250.0)
    total = interp.run("total_load", hg2, ls)
    print(f"H-graph transform demo: total load magnitude {total} "
          f"({interp.stats.condition_checks} formal condition checks ran)")

    # 7. the iterative process: seed a defect, watch the iteration fix it
    broken = fem2_stack()
    broken.layer(2).operation("speculative_vector_unit")  # uncovered!
    proc = DesignProcess(broken)
    proc.baseline()

    def iteration_one(s):
        s.layer(2).get("speculative_vector_unit").implemented_by = ("linalg_library",)

    proc.iterate("route the new op through the linalg library", iteration_one)
    print(f"\niterative design: defect curve {proc.defect_curve()} "
          f"-> converged: {proc.converged()}")

    # 8. the full design document
    print("\n--- design document (excerpt) ---")
    doc = render_stack(stack)
    print("\n".join(doc.splitlines()[:30]))
    print(f"... ({len(doc.splitlines())} lines total)")


if __name__ == "__main__":
    main()
