"""A machine-design study: the simulations the FEM-2 designers ran.

"The precise formal definitions are then used as the basis for
simulations of the various virtual machine levels.  Simulations to
measure the storage, processing, and communication patterns in typical
FEM-2 applications ... are of particular importance."

This script closes the paper's design loop quantitatively:

1. predict solve times for candidate machine configurations from the
   analytic critical-path model (no simulation),
2. pick the best candidate and *verify* it by running the simulator,
3. inspect the run's communication pattern (hub score, burstiness,
   concurrency profile) — the evidence a designer needs to choose a
   topology and dispatch policy.

Run:  python examples/machine_study.py
"""

import numpy as np

from repro import Fem2Program, MachineConfig
from repro.analysis import (
    Measured,
    communication_matrix,
    concurrency_profile,
    burstiness,
    estimate_cg_elapsed,
    hub_score,
    rank_configurations,
)
from repro.bench import plane_stress_cantilever
from repro.fem import parallel_cg_solve, partition_strips, static_solve
from repro.hardware import TraceRecorder


def main() -> None:
    problem = plane_stress_cantilever(12)
    print(f"application: {problem.name} — {problem.mesh.n_dofs} dofs, "
          f"{problem.mesh.n_elements} elements\n")

    # 1. paper-style prediction: rank candidate machines without running
    candidates = [
        MachineConfig(n_clusters=c, pes_per_cluster=5, topology=t,
                      memory_words_per_cluster=32_000_000)
        for c, t in ((2, "complete"), (4, "complete"), (4, "ring"),
                     (8, "hypercube"))
    ]
    ranked = rank_configurations(problem.mesh, candidates, iterations=60)
    print("predicted ranking (critical-path model, no simulation):")
    for cfg, pred in ranked:
        print(f"  {cfg.n_clusters} clusters / {cfg.topology:<9} -> "
              f"{pred['total']:>10,} cycles predicted "
              f"({pred['per_iteration']:,}/iteration)")

    # 2. verify the winner on the simulator
    best_cfg, best_pred = ranked[0]
    trace = TraceRecorder(capacity=500_000)
    prog = Fem2Program(best_cfg, trace=trace)
    subs = partition_strips(problem.mesh, max(2, best_cfg.n_clusters))
    info = parallel_cg_solve(prog, problem.mesh, problem.material,
                             problem.constraints, problem.loads,
                             subs=subs, tol=1e-8)
    ref = static_solve(problem.mesh, problem.material, problem.constraints,
                       problem.loads)
    err = np.abs(info.u - ref.u).max() / np.abs(ref.u).max()
    pred = estimate_cg_elapsed(problem.mesh, subs, best_cfg, info.iterations)
    print(f"\nverification run on the winner "
          f"({best_cfg.n_clusters} clusters / {best_cfg.topology}):")
    print(f"  measured {info.elapsed_cycles:,} cycles vs predicted "
          f"{pred['total']:,} (ratio {pred['total'] / info.elapsed_cycles:.3f})")
    print(f"  {info.iterations} CG iterations, solution error vs host "
          f"{err:.1e}")

    measured = Measured.from_metrics(prog.metrics)
    print(f"  processing {measured.flops:,} flops | communication "
          f"{measured.messages:,} messages, {measured.message_words:,} words "
          f"| storage hwm {measured.storage_hwm_words:,} words")

    # 3. the communication pattern, from the trace
    m = communication_matrix(trace, best_cfg.n_clusters)
    print(f"\ncommunication pattern:")
    print(f"  hub score {hub_score(m):.2f} (1.0 = pure hub-and-spoke "
          f"through the root cluster)")
    print(f"  burstiness {burstiness(trace):.2f} (peak/mean messages per "
          f"time bin)")
    profile = concurrency_profile(trace, bins=12)
    bar = " ".join(str(c) for c in profile)
    print(f"  tasks in flight per time bin: {bar}")
    print("\nconclusion: the traffic is root-centric — a cheap topology "
          "that serves the hub pattern (even a star) matches the complete "
          "graph, which is exactly the kind of finding the FEM-2 design "
          "iterations were meant to surface.")


if __name__ == "__main__":
    main()
