"""Programming the numerical analyst's virtual machine directly.

Writes a parallel program in the paper's language constructs — tasks,
windows, forall, broadcast, parallel linear algebra — and runs it on
the simulated FEM-2 machine.  This is the level-2 view of the system:
below the workstation, above the operating system.

The program estimates the dominant eigenvalue of a plane-stress
stiffness matrix by power iteration, built from the langvm's
distributed matvec and inner product.

Run:  python examples/parallel_program.py
"""

import numpy as np

from repro import Fem2Program, MachineConfig
from repro.bench import plane_stress_cantilever
from repro.fem import assemble_stiffness
from repro.langvm import ensure_registered, forall, linalg


def main() -> None:
    problem = plane_stress_cantilever(6)
    k_dense = assemble_stiffness(problem.mesh, problem.material, fmt="dense")
    free = problem.constraints.free_dofs
    k_ff = k_dense[np.ix_(free, free)]
    n = k_ff.shape[0]
    print(f"problem: {problem.name}, free system {n}x{n}")

    cfg = MachineConfig(n_clusters=4, pes_per_cluster=5,
                        memory_words_per_cluster=8_000_000)
    prog = Fem2Program(cfg)
    ensure_registered(prog)

    @prog.task()
    def power_iteration(ctx, iters):
        """Dominant eigenvalue of K_ff by distributed power iteration."""
        ka = yield ctx.create(k_ff)
        xa = yield ctx.create(np.ones(n) / np.sqrt(n))
        ya = yield ctx.create(np.zeros(n))
        kw, xw, yw = ctx.window(ka), ctx.window(xa), ctx.window(ya)
        lam = 0.0
        for _ in range(iters):
            # y <- K x   (row-banded distributed matvec)
            yield from linalg.matvec(ctx, kw, xw, yw, workers=4)
            # lambda <- x . y ; x <- y / ||y||
            lam = yield from linalg.inner(ctx, xw, yw, workers=4)
            norm2 = yield from linalg.norm2(ctx, yw, workers=4)
            y = yield ctx.read(yw)
            yield ctx.compute(flops=n)
            yield ctx.write(xw, y.ravel() / np.sqrt(norm2))
        return lam

    lam = prog.run("power_iteration", 30)
    exact = float(np.linalg.eigvalsh(k_ff).max())
    print(f"power iteration:  lambda = {lam:.6e}")
    print(f"numpy eigvalsh :  lambda = {exact:.6e}")
    print(f"relative error :  {abs(lam - exact) / exact:.2e}")

    m = prog.metrics
    print("\nmachine activity:")
    print(f"  tasks initiated : {m.get('task.initiated'):,.0f}")
    print(f"  messages        : {m.get('comm.messages'):,.0f} "
          f"({m.get('comm.words'):,.0f} words)")
    print(f"  PE cycles       : {m.get('proc.cycles'):,.0f}")
    print(f"  elapsed         : {prog.now:,} cycles")

    # a second program: plain forall over independent chunks
    prog2 = Fem2Program(cfg)

    @prog2.task()
    def chunk(ctx, base, index):
        yield ctx.compute(flops=1000)
        return base + index

    @prog2.task()
    def driver(ctx):
        results = yield from forall(ctx, "chunk", n=16, args=(100,))
        return sum(results)

    total = prog2.run("driver")
    print(f"\nforall over 16 chunks -> {total} "
          f"(in {prog2.now:,} cycles on {cfg.total_workers} workers)")


if __name__ == "__main__":
    main()
